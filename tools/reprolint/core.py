"""Core machinery of reprolint: file discovery, noqa handling, reporting.

reprolint is a repo-specific static analyzer for invariants a generic
linter cannot know: frozen-model mutation discipline, read-only numpy
storage, millisecond units, the deliberate-NaN policy around
``bg_completion_rate``, the SCC-aware stationary solve of reducible
phase processes, and -- project-wide -- the soundness of construction
certificates, contract coverage of public entry points and unit flow
across call sites.

Per-file rules live in :mod:`tools.reprolint.rules`; the project-level
analysis (cross-file symbol table, call graph, dataflow-backed rules and
the result cache) lives in :mod:`tools.reprolint.project`.

Suppression: a violation is dropped when its source line (or one of the
logical-line anchors the rule attaches, e.g. the ``def`` line of a
multi-line signature) carries a ``# noqa`` comment, either bare or
naming the rule (``# noqa: RL003`` -- comma-separated lists, lowercase
codes and mixed ruff/reprolint codes are fine, unknown codes are
ignored).  CLAUDE.md mandates a trailing ``-- reason`` on reprolint
suppressions; RL009 audits both stale suppressions and missing reasons.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "NoqaComment",
    "Violation",
    "find_noqa",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "noqa_map",
    "raw_lint_source",
    "render",
    "suppressed",
]

#: Directory parts never descended into during discovery.
EXCLUDED_PARTS = {"__pycache__", ".git", ".hypothesis"}

#: The linter's own seeded-violation fixtures: a ``fixtures`` directory
#: is skipped only when it sits directly under ``reprolint`` (a plain
#: ``tests/fixtures`` of user code must still be linted).
_FIXTURE_PARENT = "reprolint"

_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)
_RL_CODE = re.compile(r"^RL\d{3}$")


@dataclass(frozen=True)
class NoqaComment:
    """One parsed ``# noqa`` comment on a physical source line."""

    line: int
    #: Column of the ``#`` that opens the comment.
    col: int
    #: End column of the full noqa comment (codes and reason included).
    end_col: int
    #: None for a bare ``# noqa``; uppercased codes otherwise.
    codes: tuple[str, ...] | None
    #: True when a ``-- reason`` trailer follows the codes.
    has_reason: bool

    @property
    def rl_codes(self) -> tuple[str, ...]:
        if self.codes is None:
            return ()
        return tuple(c for c in self.codes if _RL_CODE.match(c))

    def suppresses(self, code: str) -> bool:
        if self.codes is None:
            return True  # bare "# noqa" silences everything on the line
        return code.upper() in self.codes


def find_noqa(line_text: str, line_number: int = 0) -> NoqaComment | None:
    """Parse the ``# noqa`` comment on one physical line, if present."""
    match = _NOQA.search(line_text)
    if match is None:
        return None
    codes_raw = match.group("codes")
    end = match.end()
    has_reason = False
    if codes_raw is not None:
        trailer = line_text[match.end():]
        reason_match = re.match(r"\s*--\s*\S", trailer)
        if reason_match is not None:
            has_reason = True
            end = len(line_text.rstrip())
        codes = tuple(
            c.strip().upper() for c in codes_raw.split(",") if c.strip()
        )
    else:
        codes = None
    return NoqaComment(
        line=line_number,
        col=match.start(),
        end_col=end,
        codes=codes,
        has_reason=has_reason,
    )


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: Additional physical lines where a ``# noqa`` also suppresses this
    #: violation (e.g. the ``def`` line for a parameter reported inside a
    #: multi-line signature, or the first line of a multi-line call).
    extra_noqa_lines: tuple[int, ...] = field(default=())

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


def noqa_map(source: str) -> dict[int, NoqaComment]:
    """All ``# noqa`` comments in ``source``, keyed by physical line.

    Comments are located with :mod:`tokenize`, so a ``# noqa`` *inside a
    string literal* (common in linter tests) is not mistaken for a
    suppression.  Falls back to a line-regex scan when the source does
    not tokenize (it still parses line-wise well enough to honour
    suppressions next to a syntax error).
    """
    import io
    import tokenize

    comments: dict[int, NoqaComment] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            line_number = token.start[0]
            parsed = find_noqa(token.string, line_number)
            if parsed is not None:
                col = token.start[1] + parsed.col
                comments[line_number] = NoqaComment(
                    line=line_number,
                    col=col,
                    end_col=token.start[1] + parsed.end_col,
                    codes=parsed.codes,
                    has_reason=parsed.has_reason,
                )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for line_number, text in enumerate(source.splitlines(), start=1):
            parsed = find_noqa(text, line_number)
            if parsed is not None:
                comments[line_number] = parsed
    return comments


def suppressed(
    violation: Violation, comments: dict[int, NoqaComment]
) -> bool:
    """True when a noqa comment on an anchor line silences the violation."""
    for line in (violation.line, *violation.extra_noqa_lines):
        comment = comments.get(line)
        if comment is not None and comment.suppresses(violation.code):
            return True
    return False


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Run the per-file rules on one source string.

    Returns the unsuppressed violations of the single-file rules
    (RL001-RL006, RL010).  The project-level rules (RL007-RL009) need
    cross-file context and run through
    :class:`tools.reprolint.project.Project` / :func:`lint_paths`.
    """
    violations = raw_lint_source(source, path)
    comments = noqa_map(source)
    return sorted(
        (v for v in violations if not suppressed(v, comments)),
        key=lambda v: (v.line, v.col, v.code),
    )


def raw_lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Per-file rule violations *before* noqa suppression."""
    from tools.reprolint.rules import FILE_RULES

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        return [Violation(path, line, col, "RL000", f"syntax error: {exc.msg}")]
    violations: list[Violation] = []
    for rule in FILE_RULES:
        violations.extend(rule(tree, path))
    return violations


def lint_file(path: Path) -> list[Violation]:
    """Lint one file on disk with the per-file rules."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path))


def _is_reprolint_fixture(path: Path) -> bool:
    parts = path.parts
    return any(
        part == "fixtures" and index > 0 and parts[index - 1] == _FIXTURE_PARENT
        for index, part in enumerate(parts)
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the set of Python files to lint.

    Directories are walked recursively, skipping :data:`EXCLUDED_PARTS`
    and the linter's own seeded-violation fixtures under
    ``tools/reprolint/fixtures`` (any *other* ``fixtures`` directory --
    e.g. ``tests/fixtures`` -- is real code and is linted).  Explicitly
    named files are always linted.
    """
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if EXCLUDED_PARTS.intersection(candidate.parts):
                    continue
                if _is_reprolint_fixture(candidate):
                    continue
                yield candidate
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[Path]) -> list[Violation]:
    """Run the full analysis (file + project rules) under ``paths``.

    Convenience wrapper over :class:`tools.reprolint.project.Project`
    with caching disabled; returns the unsuppressed violations.
    """
    from tools.reprolint.project import Project

    return Project(list(paths)).lint()


def render(violations: Sequence[Violation]) -> str:
    """Human-readable report, one line per violation plus a summary."""
    lines = [v.render() for v in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"reprolint: {len(violations)} {noun}")
    return "\n".join(lines)
