"""Core machinery of reprolint: file discovery, noqa handling, reporting.

reprolint is a repo-specific AST linter for invariants a generic linter
cannot know: frozen-model mutation discipline, read-only numpy storage,
millisecond units, the deliberate-NaN policy around ``bg_completion_rate``
and the SCC-aware stationary solve of reducible phase processes.  The
rules live in :mod:`tools.reprolint.rules`; this module turns paths into
violations and violations into a report.

Suppression: a violation is dropped when its source line carries a
``# noqa`` comment, either bare or naming the rule
(``# noqa: RL003`` -- comma-separated lists and mixed ruff/reprolint
codes are fine, unknown codes are ignored).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Violation", "lint_file", "lint_paths", "lint_source", "render"]

#: Directory parts never descended into during discovery.
EXCLUDED_PARTS = {"__pycache__", ".git", ".hypothesis", "fixtures"}

_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


def _suppressed(violation: Violation, source_lines: Sequence[str]) -> bool:
    if not 1 <= violation.line <= len(source_lines):
        return False
    match = _NOQA.search(source_lines[violation.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True  # bare "# noqa" silences everything on the line
    return violation.code.upper() in {
        c.strip().upper() for c in codes.split(",") if c.strip()
    }


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Lint one source string; returns the unsuppressed violations."""
    from tools.reprolint.rules import ALL_RULES

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        return [Violation(path, line, col, "RL000", f"syntax error: {exc.msg}")]
    lines = source.splitlines()
    violations: list[Violation] = []
    for rule in ALL_RULES:
        violations.extend(rule(tree, path))
    return sorted(
        (v for v in violations if not _suppressed(v, lines)),
        key=lambda v: (v.line, v.col, v.code),
    )


def lint_file(path: Path) -> list[Violation]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the set of Python files to lint.

    Directories are walked recursively, skipping :data:`EXCLUDED_PARTS`
    (the linter's own seeded-violation fixtures are under a ``fixtures``
    directory and are only linted when named explicitly as files).
    """
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not EXCLUDED_PARTS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[Path]) -> list[Violation]:
    """Lint every Python file under ``paths``; returns all violations."""
    violations: list[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(lint_file(file_path))
    return violations


def render(violations: Sequence[Violation]) -> str:
    """Human-readable report, one line per violation plus a summary."""
    lines = [v.render() for v in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"reprolint: {len(violations)} {noun}")
    return "\n".join(lines)
