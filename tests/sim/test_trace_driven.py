"""Tests for trace-driven simulation."""

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.processes import PoissonProcess
from repro.sim import FgBgSimulator
from repro.workloads import email, generate_trace

MU = 1 / 6.0


def make_model(rho=0.4, p=0.6) -> FgBgModel:
    return FgBgModel(
        arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p
    )


class TestValidation:
    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="non-empty"):
            FgBgSimulator(make_model(), arrival_trace=np.array([]))

    def test_rejects_negative_interarrivals(self):
        with pytest.raises(ValueError, match="non-negative"):
            FgBgSimulator(make_model(), arrival_trace=np.array([1.0, -1.0]))

    def test_rejects_horizon_beyond_trace(self):
        sim = FgBgSimulator(make_model(), arrival_trace=np.ones(10))
        with pytest.raises(ValueError, match="exceeds the trace duration"):
            sim.run(100.0, np.random.default_rng(0))


class TestReplay:
    def test_exponential_trace_matches_analytic(self):
        model = make_model()
        rng = np.random.default_rng(0)
        trace = rng.exponential(1.0 / model.arrival.mean_rate, size=120_000)
        result = FgBgSimulator(model, arrival_trace=trace).run(
            1_200_000.0, np.random.default_rng(1)
        )
        analytic = model.solve()
        assert result.fg_queue_length == pytest.approx(
            analytic.fg_queue_length, rel=0.08
        )
        assert result.bg_completion_rate == pytest.approx(
            analytic.bg_completion_rate, rel=0.05
        )

    def test_mmpp_trace_matches_mmpp_model(self):
        arrival = email().scaled_to_utilization(0.3, MU)
        model = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.6)
        trace = generate_trace(arrival, 60_000, np.random.default_rng(2))
        horizon = float(trace.sum()) * 0.9
        result = FgBgSimulator(model, arrival_trace=trace).run(
            horizon, np.random.default_rng(3)
        )
        analytic = model.solve()
        # Correlated traces converge slowly; coarse agreement suffices to
        # show the replay feeds the same process.
        assert result.fg_queue_length == pytest.approx(
            analytic.fg_queue_length, rel=0.3
        )

    def test_trace_exhaustion_drains_system(self):
        # A short trace inside a long horizon: arrivals stop, the queue
        # drains, and the simulation still terminates.
        model = make_model(p=0.0)
        trace = np.full(10, 1.0)
        sim = FgBgSimulator(model, arrival_trace=trace)
        result = sim.run(10.0, np.random.default_rng(4), warmup_fraction=0.0)
        assert result.fg_completions <= 10

    def test_replay_is_deterministic_in_arrivals(self):
        model = make_model(p=0.0)
        # One arrival every 30 ms over a 6000 ms horizon: 200 arrivals,
        # load 0.2, so essentially every job finishes within the horizon.
        trace = np.full(1000, 30.0)
        a = FgBgSimulator(model, arrival_trace=trace).run(
            6000.0, np.random.default_rng(7), warmup_fraction=0.0
        )
        assert 195 <= a.fg_completions <= 200
