"""Tests for simulation statistics."""

import numpy as np
import pytest

from repro.sim import BatchMeans, TimeWeightedAverage, confidence_interval


class TestTimeWeightedAverage:
    def test_piecewise_constant_average(self):
        avg = TimeWeightedAverage(initial_value=0.0)
        avg.update(2.0, 1.0)  # value 0 on [0,2)
        avg.update(4.0, 3.0)  # value 1 on [2,4)
        # value 3 on [4,6): mean = (0*2 + 1*2 + 3*2)/6
        assert avg.mean(6.0) == pytest.approx(8.0 / 6.0)

    def test_mean_at_start_is_current_value(self):
        avg = TimeWeightedAverage(initial_value=5.0)
        assert avg.mean(0.0) == 5.0

    def test_reset_starts_new_window(self):
        avg = TimeWeightedAverage(initial_value=10.0)
        avg.update(5.0, 2.0)
        avg.reset(5.0)
        assert avg.mean(10.0) == pytest.approx(2.0)

    def test_time_going_backwards_rejected(self):
        avg = TimeWeightedAverage()
        avg.update(5.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            avg.update(4.0, 2.0)

    def test_value_property(self):
        avg = TimeWeightedAverage()
        avg.update(1.0, 7.0)
        assert avg.value == 7.0


class TestConfidenceInterval:
    def test_contains_true_mean_for_gaussian(self, rng):
        samples = rng.normal(10.0, 2.0, size=400)
        ci = confidence_interval(samples, level=0.99)
        assert ci.contains(10.0)

    def test_width_shrinks_with_samples(self, rng):
        small = confidence_interval(rng.normal(0, 1, size=50))
        large = confidence_interval(rng.normal(0, 1, size=5000))
        assert large.half_width < small.half_width

    def test_endpoints(self):
        ci = confidence_interval(np.array([1.0, 2.0, 3.0]))
        assert ci.low == pytest.approx(ci.mean - ci.half_width)
        assert ci.high == pytest.approx(ci.mean + ci.half_width)

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="at least 2"):
            confidence_interval(np.array([1.0]))

    def test_rejects_bad_level(self):
        with pytest.raises(ValueError, match="level"):
            confidence_interval(np.array([1.0, 2.0]), level=1.5)

    def test_repr(self):
        assert "+-" in repr(confidence_interval(np.array([1.0, 2.0, 3.0])))


class TestBatchMeans:
    def test_interval_covers_mean_of_iid(self, rng):
        bm = BatchMeans(batches=10)
        for v in rng.exponential(2.0, size=2000):
            bm.add(v)
        ci = bm.interval(level=0.99)
        assert ci.contains(2.0)

    def test_requires_enough_observations(self):
        bm = BatchMeans(batches=10)
        for v in range(15):
            bm.add(v)
        with pytest.raises(ValueError, match="at least"):
            bm.interval()

    def test_count(self):
        bm = BatchMeans(batches=2)
        bm.add(1.0)
        bm.add(2.0)
        assert bm.count == 2

    def test_requires_two_batches(self):
        with pytest.raises(ValueError, match="at least 2"):
            BatchMeans(batches=1)
