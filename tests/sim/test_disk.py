"""Tests for the disk service-time model."""

import numpy as np
import pytest

from repro.sim import DiskModel
from repro.sim.disk import DiskRequest


class TestGeometry:
    def test_revolution_time(self):
        assert DiskModel(rpm=10_000).revolution_ms == pytest.approx(6.0)

    def test_seek_zero_distance(self):
        assert DiskModel().seek_time_ms(0.0) == 0.0

    def test_seek_full_stroke(self):
        d = DiskModel(seek_min_ms=0.5, seek_max_ms=9.0)
        assert d.seek_time_ms(1.0) == pytest.approx(9.0)

    def test_seek_monotone(self):
        d = DiskModel()
        seeks = [d.seek_time_ms(x) for x in np.linspace(0.01, 1.0, 20)]
        assert all(a < b for a, b in zip(seeks, seeks[1:]))

    def test_seek_distance_validated(self):
        with pytest.raises(ValueError, match="distance"):
            DiskModel().seek_time_ms(1.5)

    def test_transfer_time(self):
        d = DiskModel(media_rate_mib_s=64.0)
        assert d.transfer_time_ms(64.0) == pytest.approx(1000.0 / 1024.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="rpm"):
            DiskModel(rpm=0)
        with pytest.raises(ValueError, match="seek_min"):
            DiskModel(seek_min_ms=5.0, seek_max_ms=1.0)


class TestWorkload:
    def test_mean_service_time_near_paper_value(self):
        # The paper models the disk with a 6 ms mean service time; the
        # default drive parameters should land in that neighbourhood.
        mean = DiskModel().mean_service_time_ms()
        assert 5.0 < mean < 9.0

    def test_sampled_mean_matches_analytic(self, rng):
        d = DiskModel()
        times = d.sample_random_workload(rng, n=20_000)
        assert times.mean() == pytest.approx(d.mean_service_time_ms(), rel=0.05)

    def test_service_times_have_low_cv(self, rng):
        # The paper's trace table reports service-time CV < 1; the physical
        # model reproduces that (sum of bounded components).
        d = DiskModel()
        times = d.sample_random_workload(rng, n=20_000)
        cv = times.std() / times.mean()
        assert cv < 1.0

    def test_service_time_components_additive(self, rng):
        d = DiskModel()
        req = DiskRequest(cylinder=0.75, size_kib=8.0)
        t = d.service_time_ms(req, head_position=0.25, rng=rng)
        seek = d.seek_time_ms(0.5)
        transfer = d.transfer_time_ms(8.0)
        assert seek + transfer <= t <= seek + transfer + d.revolution_ms

    def test_workload_requires_positive_n(self, rng):
        with pytest.raises(ValueError, match=">= 1"):
            DiskModel().sample_random_workload(rng, n=0)
