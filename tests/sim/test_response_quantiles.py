"""Tests for response-time sample collection and quantiles."""

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.processes import PoissonProcess
from repro.sim import FgBgSimulator
from repro.vacation import MM1Queue

MU = 1 / 6.0


def run(rho=0.5, p=0.0, collect=True, horizon=1_200_000.0, seed=0):
    model = FgBgModel(
        arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p
    )
    return FgBgSimulator(model).run(
        horizon, np.random.default_rng(seed), collect_response_times=collect
    )


class TestQuantiles:
    def test_mm1_response_is_exponential(self):
        result = run(rho=0.5)
        queue = MM1Queue(lam=0.5 * MU, mu=MU)
        for q in (0.5, 0.9, 0.99):
            assert result.fg_response_quantile(q) == pytest.approx(
                queue.response_time_quantile(q), rel=0.06
            )

    def test_samples_mean_matches_metric(self):
        result = run(rho=0.4, p=0.6)
        assert result.fg_response_samples.mean() == pytest.approx(
            result.fg_response_time, rel=1e-9
        )

    def test_background_work_fattens_the_tail(self):
        clean = run(rho=0.4, p=0.0, seed=3)
        loaded = run(rho=0.4, p=0.9, seed=3)
        assert loaded.fg_response_quantile(0.99) > clean.fg_response_quantile(0.99)

    def test_quantiles_monotone(self):
        result = run()
        assert result.fg_response_quantile(0.5) < result.fg_response_quantile(0.95)


class TestValidation:
    def test_quantile_requires_collection(self):
        result = run(collect=False, horizon=50_000.0)
        assert result.fg_response_samples is None
        with pytest.raises(ValueError, match="collect_response_times"):
            result.fg_response_quantile(0.5)

    def test_quantile_level_validated(self):
        result = run(horizon=50_000.0)
        with pytest.raises(ValueError, match="q must"):
            result.fg_response_quantile(1.2)
