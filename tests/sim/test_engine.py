"""Tests for the event-calendar engine."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_fifo_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(1.0, lambda: fired.append(2))
        sim.run_until(2.0)
        assert fired == [1, 2]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run_until(5.0)
        assert seen == [2.5]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(ValueError, match="backwards"):
            sim.run_until(1.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run_until(2.0)
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run_until(2.0)

    def test_pending_counts_only_live_events(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.pending == 1


class TestCascades:
    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(sim.now)
            if n > 0:
                sim.schedule(1.0, lambda: chain(n - 1))

        sim.schedule(1.0, lambda: chain(3))
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert not sim.step()

    def test_events_beyond_horizon_stay_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run_until(4.0)
        assert fired == []
        assert sim.pending == 1
        sim.run_until(6.0)
        assert fired == ["late"]
