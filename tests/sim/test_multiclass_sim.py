"""Tests for the multiclass simulator, including analytic cross-validation."""

import numpy as np
import pytest

from repro.core.multiclass import MulticlassFgBgModel
from repro.processes import PoissonProcess
from repro.sim import MulticlassSimulator

MU = 1 / 6.0


def model(rho=0.5, probs=(0.3, 0.3), **kwargs) -> MulticlassFgBgModel:
    return MulticlassFgBgModel(
        arrival=PoissonProcess(rho * MU),
        service_rate=MU,
        bg_probabilities=probs,
        **kwargs,
    )


class TestValidation:
    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            MulticlassSimulator(model()).run(0.0, np.random.default_rng(0))

    def test_rejects_bad_warmup(self):
        with pytest.raises(ValueError, match="warmup"):
            MulticlassSimulator(model()).run(
                10.0, np.random.default_rng(0), warmup_fraction=1.5
            )


class TestAgainstAnalytic:
    def test_two_classes_all_metrics(self):
        m = model()
        analytic = m.solve()
        sim = MulticlassSimulator(m).run(1_500_000.0, np.random.default_rng(4))
        assert sim.fg_queue_length == pytest.approx(
            analytic.fg_queue_length, rel=0.06
        )
        assert sim.bg_completion_rate == pytest.approx(
            analytic.bg_completion_rate, rel=0.05
        )
        assert sim.fg_delayed_fraction == pytest.approx(
            analytic.fg_delayed_fraction, rel=0.08
        )
        for c in range(2):
            assert sim.bg_queue_lengths[c] == pytest.approx(
                analytic.bg_queue_lengths[c], rel=0.08
            )
            assert sim.bg_response_times[c] == pytest.approx(
                analytic.bg_response_times[c], rel=0.08
            )

    def test_three_classes_priority_ordering(self):
        m = model(probs=(0.2, 0.2, 0.2), bg_buffer=4)
        sim = MulticlassSimulator(m).run(800_000.0, np.random.default_rng(6))
        r = sim.bg_response_times
        assert r[0] < r[1] < r[2]


class TestConservation:
    def test_accounting(self):
        sim = MulticlassSimulator(model()).run(400_000.0, np.random.default_rng(9))
        completed = round(sum(t * sim.bg_spawned / sim.bg_spawned for t in (0,)))
        assert 0 <= sim.bg_spawned - sim.bg_dropped  # drops never exceed spawns
        assert sim.bg_queue_length <= 5.0 + 1.0  # buffer + one in service

    def test_fg_share_matches_load(self):
        sim = MulticlassSimulator(model(rho=0.5)).run(
            800_000.0, np.random.default_rng(10)
        )
        assert sim.fg_server_share == pytest.approx(0.5, abs=0.02)

    def test_deterministic_given_seed(self):
        a = MulticlassSimulator(model()).run(50_000.0, np.random.default_rng(3))
        b = MulticlassSimulator(model()).run(50_000.0, np.random.default_rng(3))
        assert a == b
