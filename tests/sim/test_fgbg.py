"""Tests for the FG/BG queue simulator (semantics and conservation)."""

import numpy as np
import pytest

from repro.core import BgServiceMode, FgBgModel
from repro.processes import PoissonProcess
from repro.sim import FgBgSimulator

MU = 1 / 6.0


def simulate(rho=0.4, p=0.3, horizon=300_000.0, seed=3, **kwargs):
    model = FgBgModel(
        arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p, **kwargs
    )
    return FgBgSimulator(model).run(horizon, np.random.default_rng(seed))


class TestValidation:
    def test_rejects_bad_horizon(self):
        model = FgBgModel(arrival=PoissonProcess(0.05), service_rate=MU, bg_probability=0.3)
        with pytest.raises(ValueError, match="horizon"):
            FgBgSimulator(model).run(0.0, np.random.default_rng(0))

    def test_rejects_bad_warmup(self):
        model = FgBgModel(arrival=PoissonProcess(0.05), service_rate=MU, bg_probability=0.3)
        with pytest.raises(ValueError, match="warmup_fraction"):
            FgBgSimulator(model).run(10.0, np.random.default_rng(0), warmup_fraction=1.0)

    def test_rejects_bad_replications(self):
        model = FgBgModel(arrival=PoissonProcess(0.05), service_rate=MU, bg_probability=0.3)
        with pytest.raises(ValueError, match="replications"):
            FgBgSimulator(model).run_replications(10.0, 0, seed=1)


class TestConservation:
    def test_bg_accounting(self):
        r = simulate(p=0.6)
        # Every spawned job is either dropped or eventually served (up to
        # the <= X jobs still buffered at the horizon).
        assert 0 <= r.bg_spawned - r.bg_dropped - r.bg_completions <= 6

    def test_spawn_fraction_close_to_p(self):
        r = simulate(p=0.6)
        assert r.bg_spawned / r.fg_completions == pytest.approx(0.6, abs=0.02)

    def test_no_bg_at_p_zero(self):
        r = simulate(p=0.0)
        assert r.bg_spawned == 0
        assert r.bg_server_share == 0.0
        assert np.isnan(r.bg_completion_rate)

    def test_throughput_matches_arrival_rate(self):
        r = simulate(rho=0.4)
        assert r.fg_throughput == pytest.approx(0.4 * MU, rel=0.03)

    def test_shares_bounded(self):
        r = simulate(p=0.9, rho=0.6)
        assert 0 <= r.bg_server_share <= 1
        assert r.fg_server_share + r.bg_server_share <= 1


class TestAgainstMM1:
    def test_mm1_queue_length(self):
        r = simulate(rho=0.5, p=0.0, horizon=800_000.0)
        assert r.fg_queue_length == pytest.approx(1.0, abs=0.07)

    def test_mm1_response_time(self):
        r = simulate(rho=0.5, p=0.0, horizon=800_000.0)
        assert r.fg_response_time == pytest.approx(12.0, rel=0.06)


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = simulate(seed=42, horizon=50_000.0)
        b = simulate(seed=42, horizon=50_000.0)
        assert a == b

    def test_replications_differ(self):
        model = FgBgModel(arrival=PoissonProcess(0.05), service_rate=MU, bg_probability=0.3)
        reps = FgBgSimulator(model).run_replications(50_000.0, 3, seed=7)
        assert len({r.fg_queue_length for r in reps}) == 3


class TestModes:
    def test_rewait_lowers_bg_throughput(self):
        btb = simulate(p=0.6, horizon=400_000.0)
        rew = simulate(p=0.6, horizon=400_000.0, bg_mode=BgServiceMode.REWAIT)
        assert rew.bg_completions < btb.bg_completions

    def test_small_buffer_drops_more(self):
        small = simulate(p=0.9, rho=0.6, bg_buffer=1)
        large = simulate(p=0.9, rho=0.6, bg_buffer=10)
        assert small.bg_dropped > large.bg_dropped
