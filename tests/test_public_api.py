"""Tests for the top-level package surface."""

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            "FgBgModel",
            "FgBgSolution",
            "MarkovianArrivalProcess",
            "MMPP",
            "PoissonProcess",
            "InterruptedPoissonProcess",
            "PhaseType",
            "FgBgSimulator",
        ],
    )
    def test_classes_reachable(self, name):
        assert getattr(repro, name) is not None

    @pytest.mark.parametrize(
        "name",
        [
            "processes",
            "markov",
            "qbd",
            "core",
            "engine",
            "faults",
            "jobs",
            "sim",
            "vacation",
            "workloads",
            "experiments",
        ],
    )
    def test_subpackages_reachable(self, name):
        module = getattr(repro, name)
        assert module.__name__ == f"repro.{name}"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.nonexistent_thing

    def test_quickstart_from_docstring(self):
        # The README/-docstring quickstart must actually run.
        from repro import FgBgModel, workloads

        model = FgBgModel(
            arrival=workloads.email().scaled_to_utilization(
                0.3, workloads.SERVICE_RATE_PER_MS
            ),
            service_rate=workloads.SERVICE_RATE_PER_MS,
            bg_probability=0.3,
        )
        solution = model.solve()
        assert 0 < solution.bg_completion_rate <= 1
