"""Tests for the non-preemptive priority baseline (Cobham)."""

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.processes import PoissonProcess
from repro.vacation import MM1Queue
from repro.vacation.priority import NonPreemptivePriorityQueue

MU = 1 / 6.0


class TestClosedForm:
    def test_degenerate_low_class_reduces_to_mm1(self):
        q = NonPreemptivePriorityQueue(lam_high=0.5, lam_low=0.0, mu=1.0)
        base = MM1Queue(lam=0.5, mu=1.0)
        assert q.high_waiting_time == pytest.approx(base.mean_waiting_time)

    def test_work_conservation(self):
        # Class-aggregated mean delay equals the FCFS M/M/1 delay (equal
        # service rates): priorities redistribute waiting, never create it.
        q = NonPreemptivePriorityQueue(lam_high=0.3, lam_low=0.4, mu=1.0)
        fcfs = MM1Queue(lam=0.7, mu=1.0)
        lam = q.lam_high + q.lam_low
        aggregate = (
            q.lam_high * q.high_waiting_time + q.lam_low * q.low_waiting_time
        ) / lam
        assert aggregate == pytest.approx(fcfs.mean_waiting_time, rel=1e-10)

    def test_priority_ordering(self):
        q = NonPreemptivePriorityQueue(lam_high=0.3, lam_low=0.4, mu=1.0)
        assert q.high_waiting_time < q.low_waiting_time

    def test_high_class_still_pays_residual(self):
        # Non-preemptive: the high class waits behind low-priority
        # residuals, so it is strictly worse off than an M/M/1 that never
        # admits the low class.
        q = NonPreemptivePriorityQueue(lam_high=0.3, lam_low=0.4, mu=1.0)
        alone = MM1Queue(lam=0.3, mu=1.0)
        assert q.high_waiting_time > alone.mean_waiting_time

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            NonPreemptivePriorityQueue(lam_high=0.6, lam_low=0.5, mu=1.0)

    def test_matches_simulation_free_identity(self):
        # Little's law wiring.
        q = NonPreemptivePriorityQueue(lam_high=0.2, lam_low=0.3, mu=1.0)
        assert q.high_queue_length == pytest.approx(
            q.lam_high * q.high_response_time
        )


class TestAgainstFgBgModel:
    """Under Poisson FG arrivals an exact identity links the two models:
    the FG mean response time of the FG/BG system equals Cobham's
    high-priority response with ``lam_low`` set to the *accepted*
    background rate -- independent of buffer size, idle-wait length, or
    scheduling mode.  (PASTA + work decomposition: a non-preemptive
    low-priority job interferes with FG work only through its residual in
    service, and in stationarity only the accepted low-priority load
    determines how often that happens.)  So the idle-wait design does not
    shield FG *mean* delay at all under Poisson arrivals -- its role is to
    shape the background side (admission/completion) and the correlated
    regime."""

    @pytest.mark.parametrize(
        "rho,p,kwargs",
        [
            (0.4, 0.9, {}),
            (0.6, 0.3, {"bg_buffer": 2}),
            (0.4, 0.9, {"idle_wait_rate": MU / 3.0}),
            (0.3, 0.6, {"bg_buffer": 10, "idle_wait_rate": MU * 2.0}),
        ],
    )
    def test_fg_response_identity_for_poisson_arrivals(self, rho, p, kwargs):
        model = FgBgModel(
            arrival=PoissonProcess(rho * MU),
            service_rate=MU,
            bg_probability=p,
            **kwargs,
        )
        s = model.solve()
        cobham = NonPreemptivePriorityQueue(
            lam_high=rho * MU,
            lam_low=s.bg_spawn_rate - s.bg_drop_rate,
            mu=MU,
        )
        assert s.fg_response_time == pytest.approx(
            cobham.high_response_time, rel=1e-9
        )

    def test_identity_breaks_under_correlated_arrivals(self):
        from repro.processes import fit_mmpp2

        arrival = fit_mmpp2(rate=0.4 * MU, scv=2.4, decay=0.95)
        s = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.9).solve()
        cobham = NonPreemptivePriorityQueue(
            lam_high=0.4 * MU,
            lam_low=s.bg_spawn_rate - s.bg_drop_rate,
            mu=MU,
        )
        # Cobham's Poisson assumption badly underestimates the correlated
        # system's foreground delay.
        assert s.fg_response_time > 1.2 * cobham.high_response_time
