"""Tests for the vacation-queue baselines."""

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.processes import PoissonProcess
from repro.vacation import MM1MultipleVacations, MM1NPolicy, MM1Queue


class TestMM1:
    def test_mean_queue_length(self):
        q = MM1Queue(lam=1.0, mu=2.0)
        assert q.mean_queue_length == pytest.approx(1.0)

    def test_little_law(self):
        q = MM1Queue(lam=0.7, mu=1.0)
        assert q.mean_queue_length == pytest.approx(q.lam * q.mean_response_time)

    def test_waiting_plus_service_is_response(self):
        q = MM1Queue(lam=0.5, mu=2.0)
        assert q.mean_response_time == pytest.approx(q.mean_waiting_time + 1 / q.mu)

    def test_pmf_sums_to_near_one(self):
        q = MM1Queue(lam=0.5, mu=1.0)
        pmf = q.queue_length_pmf(60)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-12)

    def test_pmf_matches_model(self):
        q = MM1Queue(lam=0.5, mu=1.0)
        np.testing.assert_allclose(q.queue_length_pmf(3), [0.5, 0.25, 0.125, 0.0625])

    def test_quantile_median(self):
        q = MM1Queue(lam=0.5, mu=1.0)
        assert q.response_time_quantile(0.5) == pytest.approx(np.log(2) * 2.0)

    def test_quantile_validation(self):
        with pytest.raises(ValueError, match="q must"):
            MM1Queue(lam=0.5, mu=1.0).response_time_quantile(1.5)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            MM1Queue(lam=2.0, mu=1.0)

    def test_matches_fgbg_model_at_p_zero(self):
        lam, mu = 0.06, 1 / 6.0
        q = MM1Queue(lam=lam, mu=mu)
        s = FgBgModel(arrival=PoissonProcess(lam), service_rate=mu, bg_probability=0.0).solve()
        assert s.fg_queue_length == pytest.approx(q.mean_queue_length, rel=1e-9)
        assert s.fg_response_time == pytest.approx(q.mean_response_time, rel=1e-9)


class TestMultipleVacations:
    def test_reduces_to_mm1_as_vacations_vanish(self):
        base = MM1Queue(lam=0.5, mu=1.0)
        vac = MM1MultipleVacations(lam=0.5, mu=1.0, vacation_rate=1e9)
        assert vac.mean_waiting_time == pytest.approx(base.mean_waiting_time, abs=1e-6)

    def test_decomposition_adds_mean_vacation(self):
        base = MM1Queue(lam=0.5, mu=1.0)
        vac = MM1MultipleVacations(lam=0.5, mu=1.0, vacation_rate=0.25)
        assert vac.mean_waiting_time == pytest.approx(base.mean_waiting_time + 4.0)

    def test_little_law(self):
        vac = MM1MultipleVacations(lam=0.3, mu=1.0, vacation_rate=0.5)
        assert vac.mean_queue_length == pytest.approx(vac.lam * vac.mean_response_time)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            MM1MultipleVacations(lam=1.0, mu=1.0, vacation_rate=1.0)

    def test_upper_bounds_fgbg_model_under_saturation(self):
        # With p = 1, an always-full background buffer and idle wait equal
        # to one mean vacation, the FG/BG system resembles (but is less
        # punishing than) a multiple-vacation queue: vacations end early
        # when FG work arrives mid-service only in the vacation model's
        # favour.  The decomposition bound should dominate the FG delay.
        lam, mu = 0.08, 1 / 6.0
        vac = MM1MultipleVacations(lam=lam, mu=mu, vacation_rate=mu)
        s = FgBgModel(
            arrival=PoissonProcess(lam), service_rate=mu, bg_probability=1.0
        ).solve()
        assert s.fg_queue_length < vac.mean_queue_length


class TestNPolicy:
    def test_threshold_one_is_mm1(self):
        base = MM1Queue(lam=0.5, mu=1.0)
        np1 = MM1NPolicy(lam=0.5, mu=1.0, threshold=1)
        assert np1.mean_waiting_time == pytest.approx(base.mean_waiting_time)

    def test_waiting_grows_linearly_in_threshold(self):
        lam = 0.5
        w = [
            MM1NPolicy(lam=lam, mu=1.0, threshold=n).mean_waiting_time
            for n in (1, 2, 3, 4)
        ]
        diffs = np.diff(w)
        np.testing.assert_allclose(diffs, 1.0 / (2 * lam), rtol=1e-12)

    def test_sleep_fraction(self):
        assert MM1NPolicy(lam=0.3, mu=1.0, threshold=5).server_sleep_fraction == pytest.approx(0.7)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            MM1NPolicy(lam=0.3, mu=1.0, threshold=0)

    def test_little_law(self):
        q = MM1NPolicy(lam=0.3, mu=1.0, threshold=3)
        assert q.mean_queue_length == pytest.approx(q.lam * q.mean_response_time)
