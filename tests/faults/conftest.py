"""Shared fixtures of the fault-injection suite."""

from __future__ import annotations

import pytest

from repro import faults
from repro.core import FgBgModel
from repro.processes import fit_mmpp2
from repro.workloads.paper import SERVICE_RATE_PER_MS

MU = SERVICE_RATE_PER_MS
UTILIZATIONS = (0.1, 0.25, 0.4, 0.55)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """No fault plan leaks into or out of any test."""
    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def base_model() -> FgBgModel:
    arrival = fit_mmpp2(rate=0.3 * MU, scv=4.0, decay=0.8)
    return FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.3)


@pytest.fixture
def model_chain(base_model) -> list[FgBgModel]:
    return [base_model.at_utilization(u) for u in UTILIZATIONS]
