"""The injector itself: spec grammar, determinism, plan precedence."""

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule


class TestSpecParsing:
    def test_single_point_defaults(self):
        plan = faults.parse_spec("logred_overflow")
        assert plan.points == {"logred_overflow"}

    def test_parameters(self):
        plan = faults.parse_spec("solver_stall:rate=0.25:seed=7:after=3:limit=2")
        rule = plan._rules["solver_stall"]
        assert (rule.rate, rule.seed, rule.after, rule.limit) == (0.25, 7, 3, 2)

    def test_multiple_clauses_and_whitespace(self):
        plan = faults.parse_spec(" logred_overflow , kill_run:limit=1 ,")
        assert plan.points == {"logred_overflow", "kill_run"}

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            faults.parse_spec("logred_overlfow")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown fault parameter"):
            faults.parse_spec("kill_run:count=3")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            faults.parse_spec("kill_run:limit")

    def test_duplicate_point_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            faults.parse_spec("kill_run,kill_run:limit=1")

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule(point="kill_run", rate=1.5)


class TestDeterminism:
    def spin(self, spec: str, checks: int = 50) -> list[bool]:
        plan = faults.parse_spec(spec)
        return [plan.should_fire(plan_point) for plan_point in
                ["solver_stall"] * checks]

    def test_same_spec_same_decisions(self):
        spec = "solver_stall:rate=0.3:seed=11"
        assert self.spin(spec) == self.spin(spec)

    def test_seed_changes_decisions(self):
        a = self.spin("solver_stall:rate=0.3:seed=11")
        b = self.spin("solver_stall:rate=0.3:seed=12")
        assert a != b

    def test_after_and_limit(self):
        plan = faults.parse_spec("kill_run:after=2:limit=1")
        decisions = [plan.should_fire("kill_run") for _ in range(6)]
        assert decisions == [False, False, True, False, False, False]
        assert plan.checks("kill_run") == 6
        assert plan.fires("kill_run") == 1

    def test_rate_zero_never_fires(self):
        assert not any(self.spin("solver_stall:rate=0.0"))

    def test_rate_one_always_fires(self):
        assert all(self.spin("solver_stall:rate=1.0"))


class TestPlanPrecedence:
    def test_no_plan_is_silent(self):
        assert faults.active_plan() is None
        assert not faults.fire("logred_overflow")

    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "logred_overflow:limit=1")
        assert faults.fire("logred_overflow")
        assert not faults.fire("logred_overflow")  # limit reached
        assert not faults.fire("singular_boundary")  # not in plan

    def test_env_reparse_on_change(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "logred_overflow")
        first = faults.active_plan()
        assert faults.active_plan() is first  # cached while unchanged
        monkeypatch.setenv(faults.ENV_FAULTS, "singular_boundary")
        assert faults.active_plan().points == {"singular_boundary"}

    def test_context_shadows_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "logred_overflow")
        with faults.inject("singular_boundary"):
            assert not faults.fire("logred_overflow")
            assert faults.fire("singular_boundary")
        assert faults.fire("logred_overflow")

    def test_inject_nests_and_restores(self):
        with faults.inject("kill_run") as outer:
            with faults.inject("cache_corrupt") as inner:
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_inject_accepts_prebuilt_plan(self):
        plan = FaultPlan([FaultRule(point="worker_kill", limit=1)])
        with faults.inject(plan) as active:
            assert active is plan

    def test_env_bad_spec_raises_at_first_fire(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "not_a_point")
        with pytest.raises(ValueError, match="unknown fault point"):
            faults.fire("logred_overflow")


class TestParamPayload:
    def test_param_parses_as_float(self):
        plan = faults.parse_spec("clock_skew:param=-45000")
        assert plan.param("clock_skew") == -45_000.0

    def test_fire_value_returns_the_param(self):
        with faults.inject("clock_skew:param=250"):
            assert faults.fire_value("clock_skew") == 250.0

    def test_fire_value_none_when_not_firing(self):
        assert faults.fire_value("clock_skew") is None  # no plan
        with faults.inject("clock_skew:rate=0:param=250"):
            assert faults.fire_value("clock_skew") is None  # rate miss

    def test_fire_value_none_without_param(self):
        with faults.inject("clock_skew"):
            assert faults.fire_value("clock_skew") is None

    def test_fire_value_advances_the_same_counters(self):
        with faults.inject("clock_skew:after=1:param=5") as plan:
            assert faults.fire_value("clock_skew") is None  # eaten by after
            assert faults.fire_value("clock_skew") == 5.0
            assert plan.checks("clock_skew") == 2

    def test_injected_kill_tears_through_except_exception(self):
        from repro.faults import InjectedKill

        assert not issubclass(InjectedKill, Exception)
        assert issubclass(InjectedKill, BaseException)

    def test_repository_fault_points_are_known(self):
        for point in ("torn_write", "disk_full", "clock_skew", "lock_orphan"):
            assert point in faults.KNOWN_FAULT_POINTS


class TestClockSkew:
    def test_now_ms_honours_clock_skew(self):
        import time

        from repro.jobs.store import now_ms

        with faults.inject("clock_skew:param=-60000"):
            skewed = now_ms()
        assert abs((time.time() * 1000.0 - 60_000.0) - skewed) < 5_000.0

    def test_now_ms_unskewed_without_plan(self):
        import time

        from repro.jobs.store import now_ms

        assert abs(now_ms() - time.time() * 1000.0) < 5_000.0
