"""Every injected fault ends in a correct answer or a structured failure.

The suite walks each injection point through the pipeline and asserts the
two invariants of :mod:`repro.engine.resilience`: unaffected points stay
identical to a fault-free run, and affected points either recover (via a
ladder rung, a retry, or a re-solve) to a correct value or surface as a
structured :class:`FailedSolve` / ``QBDConvergenceError`` -- never as a
silently wrong number.
"""

import numpy as np
import pytest

from repro import faults
from repro.core import FgBgModel
from repro.engine import (
    ResilienceWarning,
    SolveCache,
    SweepEngine,
)
from repro.experiments.sweeps import sweep, utilization_axis
from repro.processes import PoissonProcess
from repro.qbd.rmatrix import QBDConvergenceError
from repro.workloads.paper import SERVICE_RATE_PER_MS as MU

from .conftest import UTILIZATIONS


def poisson_models(count=4, bg_probability=0.3):
    """Same-shape chain of easy (low sp(R)) models."""
    return [
        FgBgModel(
            arrival=PoissonProcess((0.08 + 0.06 * i) * MU),
            service_rate=MU,
            bg_probability=bg_probability,
        )
        for i in range(count)
    ]


class TestScalarLadder:
    """logred_overflow / solver_stall against the escalation ladder."""

    def test_logred_overflow_recovers_via_fallback_rung(self, base_model):
        model = base_model.at_utilization(0.4)
        clean = model.solve()
        with faults.inject("logred_overflow:limit=1"):
            sol = model.solve()
        stats = sol.qbd_solution.solve_stats
        assert stats.algorithm != "logarithmic-reduction"
        assert "logarithmic-reduction" in stats.fallbacks
        np.testing.assert_allclose(
            sol.fg_response_time, clean.fg_response_time, rtol=1e-10
        )

    def test_exhausted_ladder_raises_with_attempt_log(
        self, base_model, monkeypatch
    ):
        # The bursty chain needs > 256 linear iterations, so a 1 ms budget
        # trips the functional and natural rungs at their first budget
        # check; the injected overflow removes logarithmic reduction.
        monkeypatch.setenv("REPRO_SOLVER_BUDGET_MS", "1")
        model = base_model.at_utilization(0.55)
        with faults.inject("logred_overflow"):
            with pytest.raises(QBDConvergenceError) as excinfo:
                model.solve()
        assert excinfo.value.attempts == (
            "logarithmic-reduction",
            "functional",
            "natural",
        )

    def test_stalled_linear_rungs_rescued_by_logred(
        self, base_model, monkeypatch
    ):
        # A fired stall sleeps 25 ms, which alone exceeds the 20 ms
        # budget -- both linearly convergent rungs die at their first
        # budget check, and logarithmic reduction (which converges long
        # before a check is due) finishes the solve.
        monkeypatch.setenv("REPRO_SOLVER_BUDGET_MS", "20")
        model = base_model.at_utilization(0.55)
        clean = model.solve()
        with faults.inject("solver_stall") as plan:
            sol = model.solve(algorithm="functional")
        assert plan.fires("solver_stall") >= 1
        stats = sol.qbd_solution.solve_stats
        assert stats.algorithm == "logarithmic-reduction"
        assert "functional" in stats.fallbacks
        np.testing.assert_allclose(
            sol.fg_response_time, clean.fg_response_time, rtol=1e-10
        )

    def test_singular_boundary_escalates_to_truncated_dense(self):
        model = poisson_models(1)[0]
        clean = model.solve()
        with faults.inject("singular_boundary:limit=1"):
            sol = model.solve(escalate=True)
        stats = sol.qbd_solution.solve_stats
        assert stats.degraded
        assert stats.algorithm == "truncated-dense"
        assert stats.truncation_level is not None
        np.testing.assert_allclose(
            sol.fg_response_time, clean.fg_response_time, rtol=1e-6
        )

    def test_singular_boundary_without_escalation_raises(self, base_model):
        with faults.inject("singular_boundary:limit=1"):
            with pytest.raises(np.linalg.LinAlgError, match="injected"):
                base_model.at_utilization(0.4).solve()


class TestEngineIsolation:
    """on_error at the engine/sweep layer."""

    def test_raise_mode_propagates_first_failure(self, model_chain):
        engine = SweepEngine()
        with faults.inject("singular_boundary:limit=1"):
            with pytest.raises(np.linalg.LinAlgError):
                engine.run_chain(model_chain)

    def test_skip_mode_marks_nan_and_keeps_healthy_points(self, base_model):
        axis = utilization_axis(UTILIZATIONS)
        reference = sweep(base_model, axis, "fg_response_time")
        with faults.inject("singular_boundary:after=1:limit=1"):
            with pytest.warns(ResilienceWarning):
                got = sweep(
                    base_model, axis, "fg_response_time", on_error="skip"
                )
        assert np.isnan(got.y[1])
        healthy = [0, 2, 3]
        np.testing.assert_allclose(
            got.y[healthy], reference.y[healthy], rtol=1e-10
        )

    def test_collect_mode_records_structured_failure(self, model_chain):
        engine = SweepEngine(on_error="collect")
        with faults.inject("singular_boundary:after=1:limit=1"):
            solutions = engine.run_chain(model_chain)
        assert solutions[1] is None
        assert all(s is not None for i, s in enumerate(solutions) if i != 1)
        (failure,) = engine.stats.failures
        assert failure.stage == "solve"
        assert failure.error_type == "LinAlgError"
        assert failure.fingerprint == model_chain[1].fingerprint()
        assert engine.stats.failed == 1

    def test_collect_mode_emits_no_warnings(self, model_chain, recwarn):
        engine = SweepEngine(on_error="collect")
        with faults.inject("singular_boundary:after=1:limit=1"):
            engine.run_chain(model_chain)
        assert not [
            w for w in recwarn.list if issubclass(w.category, ResilienceWarning)
        ]

    def test_collect_plus_escalate_recovers_the_point(self, model_chain):
        reference = [m.solve().fg_response_time for m in model_chain]
        engine = SweepEngine(on_error="collect", escalate=True)
        with faults.inject("singular_boundary:after=1:limit=1"):
            solutions = engine.run_chain(model_chain)
        assert all(s is not None for s in solutions)
        assert engine.stats.failures == []
        assert engine.stats.degraded_solves == 1
        np.testing.assert_allclose(
            [s.fg_response_time for s in solutions], reference, rtol=1e-6
        )


class TestBatchedIsolation:
    """One poisoned item of a batched group must not sink the other nine."""

    def test_poisoned_item_isolated_in_ten_item_group(self):
        models = poisson_models(10)
        reference = SweepEngine(batched=True).solve_batch(models)
        engine = SweepEngine(batched=True, on_error="collect")
        with faults.inject("singular_boundary:after=3:limit=1"):
            got = engine.solve_batch(models)
        assert got[3] is None
        for i in range(10):
            if i == 3:
                continue
            # Unaffected items run the identical stacked arithmetic, so
            # they are bit-identical, well inside the 1e-10 requirement.
            assert got[i].fg_response_time == reference[i].fg_response_time
        (failure,) = engine.stats.failures
        assert failure.stage == "batched"
        assert failure.fingerprint == models[3].fingerprint()
        (group,) = engine.stats.batch_groups
        assert group.report.batch_size == 10
        assert len(group.report.failures) == 1

    def test_poisoned_item_escalates_and_recovers(self):
        models = poisson_models(10)
        reference = SweepEngine(batched=True).solve_batch(models)
        engine = SweepEngine(batched=True, on_error="collect", escalate=True)
        with faults.inject("singular_boundary:after=3:limit=1"):
            got = engine.solve_batch(models)
        assert all(s is not None for s in got)
        assert engine.stats.failures == []
        np.testing.assert_allclose(
            got[3].fg_response_time, reference[3].fg_response_time, rtol=1e-6
        )
        for i in range(10):
            if i == 3:
                continue
            assert got[i].fg_response_time == reference[i].fg_response_time

    def test_demoted_item_recovers_through_scalar_fallback(self):
        # A fired logred_overflow in the stacked kernel demotes the item
        # to the scalar path; with the fault spent (limit=1) the scalar
        # ladder succeeds, so every item still gets a correct value.
        models = poisson_models(6)
        reference = SweepEngine(batched=True).solve_batch(models)
        engine = SweepEngine(batched=True)
        with faults.inject("logred_overflow:after=2:limit=1"):
            got = engine.solve_batch(models)
        np.testing.assert_allclose(
            [s.fg_response_time for s in got],
            [s.fg_response_time for s in reference],
            rtol=1e-10,
        )


class TestCacheCorruption:
    """cache_corrupt: torn writes are quarantined, counted, re-solved."""

    def plant_corrupt_entry(self, tmp_path, model):
        cache = SolveCache(tmp_path)
        key = SolveCache.key(model)
        with faults.inject("cache_corrupt:limit=1"):
            cache.put(key, model.solve())
        return key

    def test_corrupt_entry_quarantined_and_resolved(self, tmp_path):
        model = poisson_models(1)[0]
        clean = model.solve()
        key = self.plant_corrupt_entry(tmp_path, model)
        engine = SweepEngine(cache=SolveCache(tmp_path), on_error="collect")
        sol = engine.solve(model)
        np.testing.assert_allclose(
            sol.fg_response_time, clean.fg_response_time, rtol=1e-12
        )
        (failure,) = engine.stats.failures
        assert failure.stage == "cache-load"
        assert failure.contract_violation
        assert any(a.startswith("quarantined:") for a in failure.attempts)
        assert engine.stats.cache_quarantined == 1
        assert (tmp_path / f"{key}.pkl.corrupt").exists()
        # The re-solve repopulated the entry; a fresh cache now serves it.
        assert SolveCache(tmp_path).get(key) is not None

    def test_quarantine_is_mode_independent(self, tmp_path):
        # A corrupt entry is recoverable (re-solve), so even on_error
        # "raise" quarantines, records and continues instead of raising.
        model = poisson_models(1)[0]
        self.plant_corrupt_entry(tmp_path, model)
        engine = SweepEngine(cache=SolveCache(tmp_path))
        assert engine.solve(model) is not None
        assert engine.stats.cache_quarantined == 1

    def test_skip_mode_warns_on_quarantine(self, tmp_path):
        model = poisson_models(1)[0]
        self.plant_corrupt_entry(tmp_path, model)
        engine = SweepEngine(cache=SolveCache(tmp_path), on_error="skip")
        with pytest.warns(ResilienceWarning, match="quarantined"):
            engine.solve(model)


class TestWorkerKill:
    """worker_kill: SIGKILLed workers are requeued, then solved in-parent."""

    def test_killed_workers_never_lose_points(self, monkeypatch):
        chains = [poisson_models(3, bg_probability=p) for p in (0.1, 0.3, 0.6)]
        reference = SweepEngine().run_chains(chains)
        monkeypatch.setenv(faults.ENV_FAULTS, "worker_kill")
        faults.reset()
        engine = SweepEngine(jobs=2, max_retries=1, retry_backoff_ms=1.0)
        got = engine.run_chains(chains)
        monkeypatch.delenv(faults.ENV_FAULTS)
        faults.reset()
        for ref_chain, got_chain in zip(reference, got):
            assert [s.fg_response_time for s in got_chain] == [
                s.fg_response_time for s in ref_chain
            ]
        assert engine.stats.worker_retries >= 2
        assert engine.stats.failures
        for failure in engine.stats.failures:
            assert failure.stage == "worker"
            assert failure.attempts[-1] == "in-parent-serial"
