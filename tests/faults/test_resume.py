"""Crash-safe resume and CLI resilience flags, end to end.

The acceptance test of the resilience work: a run SIGKILLed mid-sweep by
the ``kill_run`` fault, resumed with ``--resume``, must print output
byte-identical to an uninterrupted run.  The kill arrives *inside* the
solve loop (after a cache put), so resuming exercises both layers: the
manifest replays completed figures verbatim, and the solve cache lets the
interrupted figure pick up mid-sweep.
"""

import os
import subprocess
import sys

import pytest

from repro import faults
from repro.experiments.manifest import MANIFEST_NAME, RunManifest
from repro.experiments.runner import main


def run_cli(args, env_faults=None, cwd=None):
    """Run ``python -m repro.experiments`` in a subprocess."""
    env = dict(os.environ)
    env.pop(faults.ENV_FAULTS, None)
    if env_faults is not None:
        env[faults.ENV_FAULTS] = env_faults
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=600,  # noqa: RL003 -- subprocess.run timeout is seconds by stdlib contract
    )


class TestKillAndResume:
    def test_killed_run_resumes_byte_identical(self, tmp_path):
        reference = run_cli(["fig9", "--cache", str(tmp_path / "ref")])
        assert reference.returncode == 0

        cache_dir = str(tmp_path / "killed")
        # SIGKILL the run after 25 cache puts -- mid-way through the
        # 44-point email-trace idle-wait sweep of fig9.
        killed = run_cli(
            ["fig9", "--cache", cache_dir],
            env_faults="kill_run:after=25:limit=1",
        )
        assert killed.returncode == -9
        partial = [
            f for f in os.listdir(cache_dir) if f.endswith(".pkl")
        ]
        assert 0 < len(partial) < 44

        resumed = run_cli(["fig9", "--cache", cache_dir, "--resume"])
        assert resumed.returncode == 0
        assert resumed.stdout == reference.stdout

    def test_resume_replays_completed_figures_verbatim(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_cli(["fig9", "--cache", cache_dir])
        assert first.returncode == 0
        manifest = RunManifest.in_cache_dir(cache_dir, config={"fast": False})
        assert manifest.figures == ("fig9",)
        again = run_cli(["fig9", "--cache", cache_dir, "--resume"])
        assert again.returncode == 0
        assert again.stdout == first.stdout

    def test_resume_requires_disk_cache(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig9", "--resume"])
        assert "--cache DIR" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["fig9", "--resume", "--cache"])


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = RunManifest.in_cache_dir(tmp_path, config={"fast": False})
        assert manifest.completed("fig9") is None
        manifest.record("fig9", "rendered text\n")
        reloaded = RunManifest.in_cache_dir(tmp_path, config={"fast": False})
        assert reloaded.completed("fig9") == "rendered text\n"

    def test_config_mismatch_starts_fresh(self, tmp_path):
        RunManifest.in_cache_dir(tmp_path, config={"fast": False}).record(
            "fig1", "slow text"
        )
        fast = RunManifest.in_cache_dir(tmp_path, config={"fast": True})
        assert fast.completed("fig1") is None

    def test_torn_manifest_is_ignored(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"version": 1, "fig')
        manifest = RunManifest.in_cache_dir(tmp_path, config={})
        assert manifest.figures == ()


class TestKeepGoing:
    def test_failing_figure_reported_and_run_continues(
        self, monkeypatch, capsys
    ):
        # Every boundary solve fails -> fig9 raises; --keep-going reports
        # it, still runs fig2 (no QBD solves), and exits nonzero.
        monkeypatch.setenv(faults.ENV_FAULTS, "singular_boundary")
        faults.reset()
        code = main(["fig9", "fig2", "--keep-going"])
        monkeypatch.delenv(faults.ENV_FAULTS)
        faults.reset()
        assert code == 1
        captured = capsys.readouterr()
        assert "FIGURE fig9 FAILED" in captured.err
        assert "LinAlgError" in captured.err
        assert "fig2" in captured.out
        assert "fig9" not in captured.out

    def test_without_keep_going_failure_propagates(self, monkeypatch):
        import numpy as np

        monkeypatch.setenv(faults.ENV_FAULTS, "singular_boundary:limit=1")
        faults.reset()
        try:
            with pytest.raises(np.linalg.LinAlgError):
                main(["fig9"])
        finally:
            monkeypatch.delenv(faults.ENV_FAULTS)
            faults.reset()

    def test_keep_going_with_collect_renders_nan_and_succeeds(self, capsys):
        # on_error=collect turns the injected failure into a NaN point
        # instead of a figure failure: exit code 0, sweep completes.
        with faults.inject("singular_boundary:after=2:limit=1"):
            code = main(["fig9", "--on-error", "collect", "--keep-going"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "nan" in out
