"""Tests for the paper workloads."""

import numpy as np
import pytest

from repro.workloads import (
    SERVICE_RATE_PER_MS,
    SERVICE_TIME_MS,
    WORKLOADS,
    email,
    software_development,
    user_accounts,
)


class TestServiceProcess:
    def test_paper_service_time(self):
        assert SERVICE_TIME_MS == 6.0
        assert SERVICE_RATE_PER_MS == pytest.approx(1 / 6.0)


class TestFittedWorkloads:
    @pytest.mark.parametrize("key", list(WORKLOADS))
    def test_utilization_matches_spec(self, key):
        spec = WORKLOADS[key]
        mmpp = spec.fit()
        util = mmpp.mean_rate / SERVICE_RATE_PER_MS
        assert util == pytest.approx(spec.base_utilization, rel=1e-6)

    @pytest.mark.parametrize("key", list(WORKLOADS))
    def test_scv_matches_spec(self, key):
        spec = WORKLOADS[key]
        assert spec.fit().scv == pytest.approx(spec.scv, rel=1e-6)

    @pytest.mark.parametrize("key", list(WORKLOADS))
    def test_acf_decay_matches_spec(self, key):
        spec = WORKLOADS[key]
        acf = spec.fit().acf(2)
        assert acf[1] / acf[0] == pytest.approx(spec.acf_decay, abs=1e-6)

    def test_email_has_high_persistent_acf(self):
        acf = email().acf(100)
        assert acf[0] > 0.25
        assert acf[99] > 0.15  # still strong at lag 100 (LRD-like)

    def test_software_dev_has_low_fast_decaying_acf(self):
        acf = software_development().acf(100)
        assert acf[0] < 0.15
        assert acf[39] < 0.01  # gone by lag 40 (SRD)

    def test_user_accounts_between(self):
        acf = user_accounts().acf(100)
        assert email().acf_at(50) > acf[49] > software_development().acf_at(50)

    def test_acf_ordering_at_lag_one(self):
        assert email().acf_at(1) > user_accounts().acf_at(1) > software_development().acf_at(1)

    def test_fits_are_cached(self):
        assert email() is email()

    def test_all_orders_are_two(self):
        for accessor in (email, software_development, user_accounts):
            assert accessor().order == 2
