"""Tests for the Section 5.4 comparators, sweeps, and trace I/O."""

import numpy as np
import pytest

from repro.processes import InterruptedPoissonProcess, PoissonProcess
from repro.workloads import (
    COMPARATOR_NAMES,
    SERVICE_RATE_PER_MS,
    dependence_comparators,
    email,
    generate_trace,
    load_trace,
    save_trace,
    trace_summary,
    utilization_sweep,
)


class TestComparators:
    def test_has_all_four(self):
        comps = dependence_comparators("email")
        assert set(comps) == set(COMPARATOR_NAMES)

    def test_all_share_mean_rate(self):
        comps = dependence_comparators("email")
        rates = {k: v.mean_rate for k, v in comps.items()}
        target = email().mean_rate
        for k, r in rates.items():
            assert r == pytest.approx(target, rel=1e-6), k

    def test_cv_matched_except_expo(self):
        comps = dependence_comparators("email")
        target = email().scv
        for k in ("high_acf", "low_acf", "ipp"):
            assert comps[k].scv == pytest.approx(target, rel=1e-6), k
        assert comps["expo"].scv == pytest.approx(1.0)

    def test_dependence_ordering(self):
        comps = dependence_comparators("email")
        assert comps["high_acf"].acf_at(10) > comps["low_acf"].acf_at(10)
        np.testing.assert_allclose(comps["ipp"].acf(10), 0.0, atol=1e-10)
        np.testing.assert_allclose(comps["expo"].acf(10), 0.0, atol=1e-12)

    def test_types(self):
        comps = dependence_comparators("email")
        assert isinstance(comps["ipp"], InterruptedPoissonProcess)
        assert isinstance(comps["expo"], PoissonProcess)

    def test_unknown_reference(self):
        with pytest.raises(ValueError, match="unknown workload"):
            dependence_comparators("payroll")


class TestUtilizationSweep:
    def test_yields_rescaled_processes(self):
        pairs = list(
            utilization_sweep(email(), [0.1, 0.5], SERVICE_RATE_PER_MS)
        )
        assert len(pairs) == 2
        for util, proc in pairs:
            assert proc.mean_rate == pytest.approx(util * SERVICE_RATE_PER_MS, rel=1e-9)

    def test_preserves_acf(self):
        (_, proc), = utilization_sweep(email(), [0.4], SERVICE_RATE_PER_MS)
        np.testing.assert_allclose(proc.acf(20), email().acf(20), atol=1e-10)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="service_rate"):
            list(utilization_sweep(email(), [0.5], 0.0))
        with pytest.raises(ValueError, match="positive"):
            list(utilization_sweep(email(), [-0.5], 1.0))


class TestTraces:
    def test_generate_matches_process_mean(self, rng):
        trace = generate_trace(email(), 40_000, rng)
        assert trace.mean() == pytest.approx(email().mean_interarrival, rel=0.2)

    def test_roundtrip(self, tmp_path, rng):
        trace = generate_trace(PoissonProcess(0.2), 100, rng)
        path = tmp_path / "trace.txt"
        save_trace(path, trace)
        loaded = load_trace(path)
        np.testing.assert_allclose(loaded, trace, rtol=1e-8)

    def test_save_rejects_negative(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            save_trace(tmp_path / "x.txt", np.array([1.0, -2.0]))

    def test_load_rejects_negative(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1.0\n-3.0\n")
        with pytest.raises(ValueError, match="negative"):
            load_trace(path)

    def test_summary_fields(self, rng):
        trace = generate_trace(PoissonProcess(0.2), 5000, rng)
        s = trace_summary(trace, lags=10)
        assert s.count == 5000
        assert s.cv == pytest.approx(1.0, abs=0.1)

    def test_generate_rejects_bad_n(self, rng):
        with pytest.raises(ValueError, match=">= 1"):
            generate_trace(PoissonProcess(0.2), 0, rng)
