"""Shared fixtures for the background-job tests.

The real figures take seconds to minutes; job-layer behavior (claiming,
progress, cancellation, requeue) only needs *a* figure that sweeps a few
cheap points through an engine.  ``tiny_figure`` registers one in the
figure registry for the duration of a test -- the worker executes it
through the exact production path (``execute_figure`` -> registry
lookup -> engine sweep).
"""

from __future__ import annotations

import pytest

from repro.core import FgBgModel
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.result import ExperimentResult
from repro.experiments.sweeps import sweep, utilization_axis
from repro.jobs import JobService, JobWorker, MemoryJobRepository
from repro.processes import PoissonProcess
from repro.workloads import SERVICE_RATE_PER_MS

#: Points the tiny figure sweeps (progress assertions count these).
TINY_POINTS = (0.2, 0.4, 0.6)


def _figtiny(engine=None):
    base = FgBgModel(
        arrival=PoissonProcess(0.01),
        service_rate=SERVICE_RATE_PER_MS,
        bg_probability=0.3,
    )
    series = sweep(base, utilization_axis(TINY_POINTS), "qlen_fg", engine=engine)
    return ExperimentResult(
        experiment_id="figtiny",
        title="Tiny sweep (job-layer tests)",
        x_label="foreground utilization",
        y_label="fg queue length",
        series=(series,),
    )


@pytest.fixture
def tiny_figure(monkeypatch):
    """Register ``figtiny`` in the figure registry; yields its id."""
    monkeypatch.setitem(ALL_FIGURES, "figtiny", _figtiny)
    return "figtiny"


@pytest.fixture
def memory_repo():
    return MemoryJobRepository()


@pytest.fixture
def service(memory_repo):
    return JobService(memory_repo)


@pytest.fixture
def worker(memory_repo):
    return JobWorker(memory_repo, worker_id="test-worker@unit")
