"""The chaos soak: seeded kill/torn-write/skew storms must leave no scars.

Each soak iteration replays a randomized-but-deterministic interleaving
of submitters, workers, the sweeper and waking zombies against a real
repository backend (see :mod:`repro.jobs.soak`), auditing the safety
invariants after every action.  ``REPRO_SOAK_ITERATIONS`` scales the
iteration count (the CI ``jobs-soak`` job raises it so the two durable
backends together exceed 200 iterations); the default keeps the regular
suite quick.

The via-jobs byte-identity leg lives with the other subprocess chaos
tests in ``test_chaos.py`` -- killing a worker needs a process to kill.
"""

import pytest

from repro._env import repro_env
from repro.jobs.soak import SoakHarness, soak

DURABLE_BACKENDS = ("file", "sqlite")


def iterations(default: int = 8) -> int:
    raw = repro_env("REPRO_SOAK_ITERATIONS")
    return int(raw) if raw else default


@pytest.mark.parametrize("backend", DURABLE_BACKENDS)
class TestChaosSoak:
    def test_no_invariant_violated_under_chaos(self, tmp_path, backend):
        report = soak(
            tmp_path, backend=backend, iterations=iterations(), seed=2006
        )
        assert report.violations == (), "\n".join(report.violations)
        # The run must have been an actual storm, not a calm pass.
        assert report.kills_injected > 0
        assert report.torn_writes > 0
        assert report.requeues > 0
        # Every job ends in exactly one terminal bucket.
        assert report.jobs_submitted == (
            report.completed
            + report.failed
            + report.cancelled
            + report.quarantined
        )

    def test_every_zombie_write_is_rejected(self, tmp_path, backend):
        report = soak(
            tmp_path, backend=backend, iterations=iterations(), seed=77
        )
        assert report.violations == (), "\n".join(report.violations)
        assert report.zombie_writes_attempted > 0
        assert (
            report.zombie_writes_rejected == report.zombie_writes_attempted
        )


class TestDeterminism:
    def test_same_seed_same_report(self, tmp_path):
        a = soak(tmp_path / "a", backend="memory", iterations=4, seed=9)
        b = soak(tmp_path / "b", backend="memory", iterations=4, seed=9)
        assert a == b

    def test_summary_reads_ok_when_clean(self, tmp_path):
        report = soak(tmp_path, backend="memory", iterations=2, seed=1)
        assert "OK" in report.summary()
        assert "memory" in report.summary()


class TestHarnessIsNotVacuous:
    def test_broken_cas_is_detected(self, tmp_path, monkeypatch):
        """Sabotage the memory store's compare-and-swap; the soak must
        light up (accepted zombie writes, mutated terminal records, ...)
        rather than pass vacuously."""
        import dataclasses

        from repro.jobs import store as store_mod

        def last_writer_wins(self, job, expected_version):
            with self._lock:
                current = self._jobs.get(job.job_id)
                version = (current.version if current else 0) + 1
                stored = dataclasses.replace(job, version=version)
                self._jobs[job.job_id] = stored
                return stored

        monkeypatch.setattr(
            store_mod.MemoryJobStore, "replace", last_writer_wins
        )
        report = soak(tmp_path, backend="memory", iterations=10, seed=42)
        assert report.violations
        assert any("zombie write accepted" in v for v in report.violations)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown job-store backend"):
            soak(tmp_path, backend="postgres", iterations=1)


class TestHarnessKnobs:
    def test_kill_rate_zero_completes_everything(self, tmp_path):
        report = soak(
            tmp_path,
            backend="memory",
            iterations=3,
            seed=5,
            kill_rate=0.0,
            torn_write_rate=0.0,
            disk_full_rate=0.0,
        )
        assert report.violations == ()
        assert report.completed == report.jobs_submitted
        assert report.kills_injected == 0
        assert report.quarantined == 0

    def test_certain_death_quarantines_not_loops(self, tmp_path):
        """kill_rate=1: no attempt ever finishes, so every job must end
        QUARANTINED (the breaker trips before the retry budget cycles)."""
        report = soak(
            tmp_path,
            backend="memory",
            iterations=2,
            seed=3,
            kill_rate=1.0,
            torn_write_rate=0.0,
            disk_full_rate=0.0,
        )
        assert report.violations == ()
        assert report.quarantined == report.jobs_submitted
        assert report.completed == 0

    def test_harness_runs_directly(self, tmp_path):
        """SoakHarness is usable standalone for debugging one seed."""
        from repro.jobs.repository import MemoryJobRepository
        from repro.jobs.soak import _Tally

        tally = _Tally()
        harness = SoakHarness(MemoryJobRepository(), seed=123, tally=tally)
        harness.run()
        assert tally.jobs_submitted == 3
        assert tally.violations == []
