"""Unit tests of the job aggregate and its state machine."""

import pytest

from repro.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    QUARANTINED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    InvalidTransition,
    Job,
    JobSpec,
)


def fresh(max_retries=3) -> Job:
    return Job.new(JobSpec(figure="fig2"), now_ms=1_000.0, max_retries=max_retries)


class TestStateMachine:
    def test_new_job_is_pending(self):
        job = fresh()
        assert job.state == PENDING
        assert not job.is_terminal
        assert job.version == 0

    def test_transition_table_is_exhaustive(self):
        assert set(TRANSITIONS) == set(STATES)
        for state in TERMINAL_STATES - {QUARANTINED}:
            assert TRANSITIONS[state] == frozenset()
        # QUARANTINED is terminal for workers but has exactly one exit:
        # the operator release back to PENDING.
        assert TRANSITIONS[QUARANTINED] == frozenset({PENDING})

    def test_claim_starts_the_job(self):
        job = fresh().claimed("w@h", 2_000.0)
        assert job.state == RUNNING
        assert job.worker_id == "w@h"
        assert job.started_ms == 2_000.0
        assert job.heartbeat_ms == 2_000.0

    def test_happy_path_to_completed(self):
        job = fresh().claimed("w@h", 2_000.0)
        job = job.progressed(3, 3_000.0)
        job = job.completed("rendered", 4_000.0)
        assert job.state == COMPLETED
        assert job.result_text == "rendered"
        assert job.points_done == 3
        assert job.finished_ms == 4_000.0

    def test_failure_records_diagnostic(self):
        job = fresh().claimed("w@h", 2_000.0).failed("boom", 3_000.0)
        assert job.state == FAILED
        assert job.error == "boom"

    def test_pending_can_cancel_immediately(self):
        assert fresh().cancelled(2_000.0).state == CANCELLED

    def test_running_cancels_cooperatively(self):
        job = fresh().claimed("w@h", 2_000.0).cancel_requested_now(2_500.0)
        assert job.state == RUNNING  # flag only; the worker transitions
        assert job.cancel_requested
        assert job.cancelled(3_000.0).state == CANCELLED

    def test_requeue_returns_to_pending_and_consumes_retry(self):
        job = fresh().claimed("w@h", 2_000.0).progressed(2, 2_500.0)
        requeued = job.requeued(3_000.0)
        assert requeued.state == PENDING
        assert requeued.retries == 1
        assert requeued.worker_id is None
        assert requeued.points_done == 0  # the next worker replays via cache

    def test_requeue_budget_is_bounded(self):
        job = fresh(max_retries=1).claimed("w@h", 2_000.0).requeued(3_000.0)
        job = job.claimed("w2@h", 4_000.0)
        with pytest.raises(InvalidTransition, match="requeue budget exhausted"):
            job.requeued(5_000.0)

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES))
    def test_terminal_states_are_sinks(self, terminal):
        job = fresh().claimed("w@h", 2_000.0)
        job = {
            COMPLETED: lambda: job.completed("r", 3_000.0),
            FAILED: lambda: job.failed("e", 3_000.0),
            CANCELLED: lambda: job.cancelled(3_000.0),
            QUARANTINED: lambda: job.quarantined(3_000.0),
        }[terminal]()
        with pytest.raises(InvalidTransition):
            job.claimed("w@h", 4_000.0)
        with pytest.raises(InvalidTransition):
            job.completed("again", 4_000.0)
        with pytest.raises(InvalidTransition):
            job.cancel_requested_now(4_000.0)

    def test_pending_cannot_complete_directly(self):
        with pytest.raises(InvalidTransition, match="pending -> completed"):
            fresh().completed("r", 2_000.0)

    def test_progress_requires_running(self):
        with pytest.raises(InvalidTransition):
            fresh().progressed(1, 2_000.0)
        with pytest.raises(InvalidTransition):
            fresh().heartbeat(2_000.0)


class TestSerialization:
    def test_round_trip(self):
        job = fresh().claimed("w@h", 2_000.0).progressed(2, 3_000.0)
        clone = Job.from_dict(job.as_dict())
        assert clone == job

    def test_round_trip_terminal(self):
        job = fresh().claimed("w@h", 2_000.0).completed("rendered\ntext", 3_000.0)
        assert Job.from_dict(job.as_dict()) == job

    def test_validation_rejects_bad_state(self):
        payload = fresh().as_dict()
        payload["state"] = "exploded"
        with pytest.raises(ValueError, match="state must be one of"):
            Job.from_dict(payload)
