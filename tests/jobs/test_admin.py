"""Admin-facade tests: stats, bulk cancel, purge."""

from repro.jobs import (
    CANCELLED,
    COMPLETED,
    PENDING,
    AdminService,
)


class TestStats:
    def test_empty_queue(self, memory_repo):
        stats = AdminService(memory_repo).stats()
        assert stats["jobs"] == 0
        assert set(stats["states"]) == {
            "pending",
            "running",
            "completed",
            "failed",
            "cancelled",
        }

    def test_counts_by_state_and_progress(
        self, service, memory_repo, worker, tiny_figure
    ):
        service.submit_figure(tiny_figure)
        service.submit_figure(tiny_figure)
        worker.run_once()
        stats = AdminService(memory_repo).stats()
        assert stats["jobs"] == 2
        assert stats["states"][COMPLETED] == 1
        assert stats["states"][PENDING] == 1
        assert stats["points_done"] == 3


class TestBulkOps:
    def test_cancel_all_pending(self, service, memory_repo, tiny_figure):
        jobs = [service.submit_figure(tiny_figure) for _ in range(3)]
        cancelled = AdminService(memory_repo).cancel_all()
        assert len(cancelled) == 3
        assert all(
            service.status(j.job_id).state == CANCELLED for j in jobs
        )

    def test_purge_removes_only_terminal_jobs(
        self, service, memory_repo, worker, tiny_figure
    ):
        done = service.submit_figure(tiny_figure)
        keep = service.submit_figure(tiny_figure)
        worker.run_until_drained(max_jobs=1)
        removed = AdminService(memory_repo).purge()
        assert removed == [done.job_id]
        assert service.status(keep.job_id).state == PENDING

    def test_purge_respects_age_cutoff(
        self, service, memory_repo, worker, tiny_figure
    ):
        service.submit_figure(tiny_figure)
        worker.run_once()
        admin = AdminService(memory_repo)
        # Finished milliseconds ago: an hour-old cutoff keeps it.
        assert admin.purge(older_than_ms=3_600_000.0) == []
        assert len(admin.purge(older_than_ms=0.0)) == 1

    def test_purge_is_safe_on_empty_queue(self, memory_repo):
        assert AdminService(memory_repo).purge() == []
