"""Admin-facade tests: stats, bulk cancel, purge, quarantine shelf."""

import pytest

from repro.jobs import (
    CANCELLED,
    COMPLETED,
    PENDING,
    QUARANTINED,
    AdminService,
    InvalidTransition,
    Job,
    JobSpec,
)
from repro.jobs.repository import now_ms


class TestStats:
    def test_empty_queue(self, memory_repo):
        stats = AdminService(memory_repo).stats()
        assert stats["jobs"] == 0
        assert set(stats["states"]) == {
            "pending",
            "running",
            "completed",
            "failed",
            "cancelled",
            "quarantined",
        }

    def test_counts_by_state_and_progress(
        self, service, memory_repo, worker, tiny_figure
    ):
        service.submit_figure(tiny_figure)
        service.submit_figure(tiny_figure)
        worker.run_once()
        stats = AdminService(memory_repo).stats()
        assert stats["jobs"] == 2
        assert stats["states"][COMPLETED] == 1
        assert stats["states"][PENDING] == 1
        assert stats["points_done"] == 3


class TestBulkOps:
    def test_cancel_all_pending(self, service, memory_repo, tiny_figure):
        jobs = [service.submit_figure(tiny_figure) for _ in range(3)]
        cancelled = AdminService(memory_repo).cancel_all()
        assert len(cancelled) == 3
        assert all(
            service.status(j.job_id).state == CANCELLED for j in jobs
        )

    def test_purge_removes_only_terminal_jobs(
        self, service, memory_repo, worker, tiny_figure
    ):
        done = service.submit_figure(tiny_figure)
        keep = service.submit_figure(tiny_figure)
        worker.run_until_drained(max_jobs=1)
        removed = AdminService(memory_repo).purge()
        assert removed == [done.job_id]
        assert service.status(keep.job_id).state == PENDING

    def test_purge_respects_age_cutoff(
        self, service, memory_repo, worker, tiny_figure
    ):
        service.submit_figure(tiny_figure)
        worker.run_once()
        admin = AdminService(memory_repo)
        # Finished milliseconds ago: an hour-old cutoff keeps it.
        assert admin.purge(older_than_ms=3_600_000.0) == []
        assert len(admin.purge(older_than_ms=0.0)) == 1

    def test_purge_is_safe_on_empty_queue(self, memory_repo):
        assert AdminService(memory_repo).purge() == []


def quarantine_one(repo) -> Job:
    """Submit, claim and quarantine a job directly through the aggregate."""
    job = repo.submit(Job.new(JobSpec(figure="fig2"), now_ms()))
    claimed = repo.claim("dead@unit", now_ms())
    return repo.update(claimed.quarantined(now_ms(), detail="test poison"))


class TestQuarantineShelf:
    def test_list_shows_only_quarantined_jobs(self, service, memory_repo, tiny_figure):
        service.submit_figure(tiny_figure)
        poisoned = quarantine_one(memory_repo)
        admin = AdminService(memory_repo)
        assert [j.job_id for j in admin.quarantine_list()] == [poisoned.job_id]
        assert admin.stats()["states"][QUARANTINED] == 1

    def test_release_returns_the_job_to_pending(self, memory_repo):
        poisoned = quarantine_one(memory_repo)
        released = AdminService(memory_repo).quarantine_release(poisoned.job_id)
        assert released.state == PENDING
        assert released.retries == 0
        assert released.error is None
        # The forensics history is preserved, capped with the release marker.
        assert [a.outcome for a in released.attempts] == [
            "worker-died",
            "released",
        ]
        # And it is claimable again.
        assert memory_repo.claim("next@unit", now_ms()) is not None

    def test_release_of_non_quarantined_job_raises(self, service, memory_repo, tiny_figure):
        job = service.submit_figure(tiny_figure)
        with pytest.raises(InvalidTransition):
            AdminService(memory_repo).quarantine_release(job.job_id)

    def test_purge_keeps_quarantined_jobs_by_default(self, memory_repo):
        poisoned = quarantine_one(memory_repo)
        admin = AdminService(memory_repo)
        assert admin.purge() == []
        assert admin.purge(include_quarantined=True) == [poisoned.job_id]
