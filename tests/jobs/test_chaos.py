"""Chaos tests: the job layer must survive SIGKILLed workers.

Two kill points, both driven by the deterministic fault injector
(``REPRO_FAULTS`` is inherited by the worker subprocess):

* ``worker_kill`` fires at the top of ``JobWorker.execute`` -- the
  worker dies the instant it claims the job, before any progress;
* ``kill_run`` fires inside ``SolveCache.put`` -- the worker dies
  mid-sweep with part of the figure already solved *and cached*.

In both cases the contract is the same: the job is left RUNNING by the
dead worker, the sweeper requeues it, a second (fault-free) worker
finishes it, and the final result is byte-identical to a blocking run
of the same figure -- for the mid-sweep kill precisely because the
second worker resumes through the queue's shared solve cache.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.runner import execute_figure

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def queue_dir(tmp_path):
    return str(tmp_path / "queue")


def cli(queue_dir, *args, faults=None, check=True):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    result = subprocess.run(  # noqa: RL003 -- subprocess timeout is seconds by stdlib contract
        [sys.executable, "-m", "repro.jobs", "--dir", queue_dir, *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if check:
        assert result.returncode == 0, (result.stdout, result.stderr)
    return result


def status(queue_dir, job_id) -> dict:
    return json.loads(cli(queue_dir, "status", job_id).stdout)


class TestWorkerKill:
    def test_killed_worker_job_is_requeued_and_completes_identically(
        self, queue_dir
    ):
        job_id = cli(queue_dir, "submit", "fig2").stdout.strip()

        # Worker 1 claims the job and is SIGKILLed at the execute hook.
        killed = cli(
            queue_dir, "worker", faults="worker_kill:limit=1", check=False
        )
        assert killed.returncode == -9

        orphan = status(queue_dir, job_id)
        assert orphan["state"] == "running"  # dead owner, record orphaned

        # The sweeper notices the dead pid (same host) and requeues.
        swept = cli(queue_dir, "sweep").stdout
        assert job_id in swept
        requeued = status(queue_dir, job_id)
        assert requeued["state"] == "pending"
        assert requeued["retries"] == 1

        # Worker 2 (fault-free) finishes; result matches the blocking path.
        cli(queue_dir, "worker")
        final = status(queue_dir, job_id)
        assert final["state"] == "completed"
        result = cli(queue_dir, "result", job_id).stdout
        assert result == execute_figure("fig2") + "\n"


class TestMidSweepKill:
    def test_mid_sweep_kill_resumes_through_cache_byte_identical(
        self, queue_dir
    ):
        """The acceptance scenario: fig9's idle-wait sweep, worker killed
        after 10 solves have landed in the queue cache, requeued, resumed,
        byte-identical to an uninterrupted blocking run."""
        job_id = cli(queue_dir, "submit", "fig9").stdout.strip()

        killed = cli(
            queue_dir,
            "worker",
            faults="kill_run:after=10:limit=1",
            check=False,
        )
        assert killed.returncode == -9

        orphan = status(queue_dir, job_id)
        assert orphan["state"] == "running"
        assert orphan["points_done"] > 0  # died mid-sweep, not at the start

        swept = cli(queue_dir, "sweep").stdout
        assert job_id in swept

        cli(queue_dir, "worker")
        final = status(queue_dir, job_id)
        assert final["state"] == "completed"
        assert final["retries"] == 1

        result = cli(queue_dir, "result", job_id).stdout
        assert result == execute_figure("fig9") + "\n"


class TestSqliteBackendChaos:
    def test_killed_worker_recovers_on_the_sqlite_backend(self, queue_dir):
        """The same kill/sweep/requeue contract, on the SQLite store."""
        job_id = cli(
            queue_dir, "--backend", "sqlite", "submit", "fig2"
        ).stdout.strip()
        assert (Path(queue_dir) / "jobs.sqlite3").exists()

        # --backend auto (the default) must find the SQLite queue.
        killed = cli(
            queue_dir, "worker", faults="worker_kill:limit=1", check=False
        )
        assert killed.returncode == -9
        assert status(queue_dir, job_id)["state"] == "running"

        swept = cli(queue_dir, "sweep").stdout
        assert job_id in swept

        cli(queue_dir, "worker")
        assert status(queue_dir, job_id)["state"] == "completed"
        result = cli(queue_dir, "result", job_id).stdout
        assert result == execute_figure("fig2") + "\n"


def experiments_cli(*args, faults=None, check=True):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    result = subprocess.run(  # noqa: RL003 -- subprocess timeout is seconds by stdlib contract
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if check:
        assert result.returncode == 0, (result.stdout, result.stderr)
    return result


class TestViaJobsByteIdentity:
    @pytest.mark.parametrize("backend", ["file", "sqlite"])
    def test_via_jobs_survives_a_mid_sweep_kill_byte_identical(
        self, queue_dir, backend
    ):
        """The soak acceptance scenario, end to end through the public
        CLI: ``--via-jobs`` fig9 with the worker killed mid-sweep, the
        orphan swept and re-run, and the final output byte-identical to
        a blocking run -- on both durable backends."""
        # Materialize the queue in the requested backend; the
        # experiments CLI then auto-detects it.
        cli(queue_dir, "--backend", backend, "list")

        killed = experiments_cli(
            "fig9",
            "--via-jobs",
            queue_dir,
            faults="kill_run:after=10:limit=1",
            check=False,
        )
        assert killed.returncode == -9

        swept = cli(queue_dir, "sweep").stdout
        assert swept.strip()  # the orphaned figure job was requeued

        rerun = experiments_cli("fig9", "--via-jobs", queue_dir)
        assert rerun.stdout == execute_figure("fig9") + "\n\n"
