"""Repository contract tests, run against both implementations."""

import json
import os

import pytest

from repro.jobs import (
    FileJobRepository,
    Job,
    JobSpec,
    LockContentionError,
    MemoryJobRepository,
    PENDING,
    RUNNING,
    SqliteJobRepository,
    StaleJobError,
    UnknownJobError,
)
from repro.jobs.repository import now_ms, open_repository


@pytest.fixture(params=["memory", "file", "sqlite"])
def repo(request, tmp_path):
    if request.param == "memory":
        return MemoryJobRepository()
    if request.param == "sqlite":
        return SqliteJobRepository(tmp_path / "queue")
    return FileJobRepository(tmp_path / "queue")


def submit(repo, figure="fig2", created_ms=None) -> Job:
    job = Job.new(JobSpec(figure=figure), now_ms=created_ms or now_ms())
    return repo.submit(job)


class TestContract:
    def test_submit_and_get(self, repo):
        job = submit(repo)
        assert repo.get(job.job_id) == job
        assert job.version == 0

    def test_get_unknown_raises(self, repo):
        with pytest.raises(UnknownJobError):
            repo.get("nope")

    def test_duplicate_submit_rejected(self, repo):
        job = submit(repo)
        with pytest.raises(ValueError, match="already exists"):
            repo.submit(job)

    def test_update_bumps_version(self, repo):
        job = submit(repo)
        updated = repo.update(job.claimed("w@h", now_ms()))
        assert updated.version == 1
        assert repo.get(job.job_id).state == RUNNING

    def test_stale_update_rejected(self, repo):
        job = submit(repo)
        repo.update(job.claimed("w@h", now_ms()))
        # A second writer still holding version 0:
        with pytest.raises(StaleJobError, match="version"):
            repo.update(job.cancelled(now_ms()))

    def test_claim_takes_oldest_pending(self, repo):
        first = submit(repo, created_ms=1_000.0)
        submit(repo, created_ms=2_000.0)
        claimed = repo.claim("w@h", now_ms())
        assert claimed.job_id == first.job_id
        assert claimed.state == RUNNING
        assert claimed.worker_id == "w@h"

    def test_claim_skips_cancel_requested(self, repo):
        job = submit(repo)
        repo.update(job.cancel_requested_now(now_ms()))
        assert repo.claim("w@h", now_ms()) is None

    def test_claim_empty_queue_returns_none(self, repo):
        assert repo.claim("w@h", now_ms()) is None

    def test_claimed_job_is_not_claimable_again(self, repo):
        submit(repo)
        assert repo.claim("w1@h", now_ms()) is not None
        assert repo.claim("w2@h", now_ms()) is None

    def test_list_filters_by_state(self, repo):
        a = submit(repo, created_ms=1_000.0)
        submit(repo, created_ms=2_000.0)
        repo.update(a.claimed("w@h", now_ms()))
        assert [j.job_id for j in repo.list_jobs(state=RUNNING)] == [a.job_id]
        assert len(repo.list_jobs(state=PENDING)) == 1
        assert len(repo.list_jobs()) == 2

    def test_delete(self, repo):
        job = submit(repo)
        repo.delete(job.job_id)
        with pytest.raises(UnknownJobError):
            repo.get(job.job_id)
        with pytest.raises(UnknownJobError):
            repo.delete(job.job_id)


class TestFileRepository:
    def test_record_is_valid_json_on_disk(self, tmp_path):
        repo = FileJobRepository(tmp_path / "q")
        job = submit(repo)
        path = repo.jobs_dir / f"{job.job_id}.json"
        payload = json.loads(path.read_text())
        assert Job.from_dict(payload) == job

    def test_no_tmp_files_left_behind(self, tmp_path):
        repo = FileJobRepository(tmp_path / "q")
        job = submit(repo)
        repo.update(job.claimed("w@h", now_ms()))
        leftovers = [p.name for p in repo.jobs_dir.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_no_lock_held_after_update(self, tmp_path):
        repo = FileJobRepository(tmp_path / "q")
        job = submit(repo)
        repo.update(job.claimed("w@h", now_ms()))
        assert not (repo.jobs_dir / f"{job.job_id}.lock").exists()

    def test_orphaned_lock_is_broken_by_age(self, tmp_path):
        repo = FileJobRepository(tmp_path / "q", lock_timeout_ms=50.0)
        job = submit(repo)
        lock = repo.jobs_dir / f"{job.job_id}.lock"
        lock.write_text("dead-holder\n")
        stale = (now_ms() - 10_000.0) / 1000.0
        os.utime(lock, (stale, stale))
        # The update must break the dead holder's lock and proceed.
        updated = repo.update(job.claimed("w@h", now_ms()))
        assert updated.state == RUNNING
        assert not lock.exists()

    def test_two_handles_share_state(self, tmp_path):
        writer = FileJobRepository(tmp_path / "q")
        reader = FileJobRepository(tmp_path / "q")
        job = submit(writer)
        assert reader.get(job.job_id) == job
        writer.update(job.claimed("w@h", now_ms()))
        assert reader.get(job.job_id).state == RUNNING

    def test_cache_dir_is_inside_the_queue(self, tmp_path):
        repo = FileJobRepository(tmp_path / "q")
        assert repo.cache_dir == str(tmp_path / "q" / "cache")

    def test_invalid_lock_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lock_timeout_ms"):
            FileJobRepository(tmp_path / "q", lock_timeout_ms=0)

    def test_contended_lock_raises_typed_timeout(self, tmp_path):
        """A held lock must surface LockContentionError, not hang the CLI."""
        repo = FileJobRepository(
            tmp_path / "q",
            lock_timeout_ms=60_000.0,  # holder is not presumed dead
            lock_acquire_timeout_ms=150.0,
        )
        job = submit(repo)
        (repo.jobs_dir / f"{job.job_id}.lock").write_text("live-holder\n")
        with pytest.raises(LockContentionError, match="could not lock"):
            repo.update(job.claimed("w@h", now_ms()))
        # Typed as a TimeoutError so claim loops keep skipping contended
        # candidates.
        assert issubclass(LockContentionError, TimeoutError)

    def test_contended_claim_skips_to_next_candidate(self, tmp_path):
        repo = FileJobRepository(
            tmp_path / "q",
            lock_timeout_ms=60_000.0,
            lock_acquire_timeout_ms=100.0,
        )
        blocked = submit(repo, created_ms=1_000.0)
        free = submit(repo, created_ms=2_000.0)
        (repo.jobs_dir / f"{blocked.job_id}.lock").write_text("live-holder\n")
        claimed = repo.claim("w@h", now_ms())
        assert claimed is not None
        assert claimed.job_id == free.job_id

    def test_invalid_acquire_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lock_acquire_timeout_ms"):
            FileJobRepository(tmp_path / "q", lock_acquire_timeout_ms=-1.0)


class TestClaimStampsEpoch:
    def test_each_claim_bumps_the_fencing_epoch(self, repo):
        job = submit(repo)
        first = repo.claim("w1@h", now_ms())
        assert first.epoch == 1
        requeued = repo.update(first.requeued(now_ms()))
        second = repo.claim("w2@h", now_ms())
        assert second.job_id == requeued.job_id
        assert second.epoch == 2

    def test_epoch_survives_serialization(self, repo):
        job = submit(repo)
        claimed = repo.claim("w@h", now_ms())
        assert repo.get(job.job_id).epoch == claimed.epoch == 1


class TestSqliteRepository:
    def test_records_live_in_one_database(self, tmp_path):
        repo = SqliteJobRepository(tmp_path / "q")
        job = submit(repo)
        assert repo.db_path.exists()
        assert repo.get(job.job_id) == job

    def test_two_handles_share_state(self, tmp_path):
        writer = SqliteJobRepository(tmp_path / "q")
        reader = SqliteJobRepository(tmp_path / "q")
        job = submit(writer)
        assert reader.get(job.job_id) == job
        writer.update(job.claimed("w@h", now_ms()))
        assert reader.get(job.job_id).state == RUNNING

    def test_cache_dir_is_inside_the_queue(self, tmp_path):
        repo = SqliteJobRepository(tmp_path / "q")
        assert repo.cache_dir == str(tmp_path / "q" / "cache")

    def test_invalid_busy_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="busy_timeout_ms"):
            SqliteJobRepository(tmp_path / "q", busy_timeout_ms=0)


class TestOpenRepository:
    def test_fresh_root_defaults_to_file_backend(self, tmp_path):
        repo = open_repository(tmp_path / "q")
        assert isinstance(repo, FileJobRepository)

    def test_auto_reopens_an_existing_sqlite_queue(self, tmp_path):
        job = submit(SqliteJobRepository(tmp_path / "q"))
        repo = open_repository(tmp_path / "q")
        assert isinstance(repo, SqliteJobRepository)
        assert repo.get(job.job_id) == job

    def test_auto_reopens_an_existing_file_queue(self, tmp_path):
        job = submit(FileJobRepository(tmp_path / "q"))
        repo = open_repository(tmp_path / "q")
        assert isinstance(repo, FileJobRepository)
        assert repo.get(job.job_id) == job

    def test_explicit_backends(self, tmp_path):
        assert isinstance(
            open_repository(tmp_path / "a", backend="sqlite"),
            SqliteJobRepository,
        )
        assert isinstance(
            open_repository(tmp_path / "b", backend="file"), FileJobRepository
        )
        with pytest.raises(ValueError, match="unknown job-store backend"):
            open_repository(tmp_path / "c", backend="postgres")
