"""Repository contract tests, run against both implementations."""

import json
import os

import pytest

from repro.jobs import (
    FileJobRepository,
    Job,
    JobSpec,
    MemoryJobRepository,
    PENDING,
    RUNNING,
    StaleJobError,
    UnknownJobError,
)
from repro.jobs.repository import now_ms


@pytest.fixture(params=["memory", "file"])
def repo(request, tmp_path):
    if request.param == "memory":
        return MemoryJobRepository()
    return FileJobRepository(tmp_path / "queue")


def submit(repo, figure="fig2", created_ms=None) -> Job:
    job = Job.new(JobSpec(figure=figure), now_ms=created_ms or now_ms())
    return repo.submit(job)


class TestContract:
    def test_submit_and_get(self, repo):
        job = submit(repo)
        assert repo.get(job.job_id) == job
        assert job.version == 0

    def test_get_unknown_raises(self, repo):
        with pytest.raises(UnknownJobError):
            repo.get("nope")

    def test_duplicate_submit_rejected(self, repo):
        job = submit(repo)
        with pytest.raises(ValueError, match="already exists"):
            repo.submit(job)

    def test_update_bumps_version(self, repo):
        job = submit(repo)
        updated = repo.update(job.claimed("w@h", now_ms()))
        assert updated.version == 1
        assert repo.get(job.job_id).state == RUNNING

    def test_stale_update_rejected(self, repo):
        job = submit(repo)
        repo.update(job.claimed("w@h", now_ms()))
        # A second writer still holding version 0:
        with pytest.raises(StaleJobError, match="version"):
            repo.update(job.cancelled(now_ms()))

    def test_claim_takes_oldest_pending(self, repo):
        first = submit(repo, created_ms=1_000.0)
        submit(repo, created_ms=2_000.0)
        claimed = repo.claim("w@h", now_ms())
        assert claimed.job_id == first.job_id
        assert claimed.state == RUNNING
        assert claimed.worker_id == "w@h"

    def test_claim_skips_cancel_requested(self, repo):
        job = submit(repo)
        repo.update(job.cancel_requested_now(now_ms()))
        assert repo.claim("w@h", now_ms()) is None

    def test_claim_empty_queue_returns_none(self, repo):
        assert repo.claim("w@h", now_ms()) is None

    def test_claimed_job_is_not_claimable_again(self, repo):
        submit(repo)
        assert repo.claim("w1@h", now_ms()) is not None
        assert repo.claim("w2@h", now_ms()) is None

    def test_list_filters_by_state(self, repo):
        a = submit(repo, created_ms=1_000.0)
        submit(repo, created_ms=2_000.0)
        repo.update(a.claimed("w@h", now_ms()))
        assert [j.job_id for j in repo.list_jobs(state=RUNNING)] == [a.job_id]
        assert len(repo.list_jobs(state=PENDING)) == 1
        assert len(repo.list_jobs()) == 2

    def test_delete(self, repo):
        job = submit(repo)
        repo.delete(job.job_id)
        with pytest.raises(UnknownJobError):
            repo.get(job.job_id)
        with pytest.raises(UnknownJobError):
            repo.delete(job.job_id)


class TestFileRepository:
    def test_record_is_valid_json_on_disk(self, tmp_path):
        repo = FileJobRepository(tmp_path / "q")
        job = submit(repo)
        path = repo.jobs_dir / f"{job.job_id}.json"
        payload = json.loads(path.read_text())
        assert Job.from_dict(payload) == job

    def test_no_tmp_files_left_behind(self, tmp_path):
        repo = FileJobRepository(tmp_path / "q")
        job = submit(repo)
        repo.update(job.claimed("w@h", now_ms()))
        leftovers = [p.name for p in repo.jobs_dir.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_no_lock_held_after_update(self, tmp_path):
        repo = FileJobRepository(tmp_path / "q")
        job = submit(repo)
        repo.update(job.claimed("w@h", now_ms()))
        assert not (repo.jobs_dir / f"{job.job_id}.lock").exists()

    def test_orphaned_lock_is_broken_by_age(self, tmp_path):
        repo = FileJobRepository(tmp_path / "q", lock_timeout_ms=50.0)
        job = submit(repo)
        lock = repo.jobs_dir / f"{job.job_id}.lock"
        lock.write_text("dead-holder\n")
        stale = (now_ms() - 10_000.0) / 1000.0
        os.utime(lock, (stale, stale))
        # The update must break the dead holder's lock and proceed.
        updated = repo.update(job.claimed("w@h", now_ms()))
        assert updated.state == RUNNING
        assert not lock.exists()

    def test_two_handles_share_state(self, tmp_path):
        writer = FileJobRepository(tmp_path / "q")
        reader = FileJobRepository(tmp_path / "q")
        job = submit(writer)
        assert reader.get(job.job_id) == job
        writer.update(job.claimed("w@h", now_ms()))
        assert reader.get(job.job_id).state == RUNNING

    def test_cache_dir_is_inside_the_queue(self, tmp_path):
        repo = FileJobRepository(tmp_path / "q")
        assert repo.cache_dir == str(tmp_path / "q" / "cache")

    def test_invalid_lock_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lock_timeout_ms"):
            FileJobRepository(tmp_path / "q", lock_timeout_ms=0)
