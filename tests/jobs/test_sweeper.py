"""Stale-job sweeper tests: dead pids, stale heartbeats, requeue bounds."""

import dataclasses
import os

import pytest

from repro.jobs import (
    FAILED,
    PENDING,
    RUNNING,
    Job,
    JobSpec,
    StaleJobSweeper,
)
from repro.jobs.repository import now_ms


def running_job(repo, worker_id, retries=0, max_retries=3):
    job = Job.new(JobSpec(figure="fig2"), now_ms=now_ms(), max_retries=max_retries)
    stored = repo.submit(job)
    claimed = repo.update(stored.claimed(worker_id, now_ms()))
    if retries:
        claimed = repo.update(dataclasses.replace(claimed, retries=retries))
    return claimed


def dead_local_worker_id() -> str:
    """A worker id on this host whose pid certainly does not exist."""
    pid = os.fork()
    if pid == 0:
        os._exit(0)  # noqa: SLF001 -- child exits immediately
    os.waitpid(pid, 0)
    return f"{pid}@{os.uname().nodename}"


class TestStaleness:
    def test_dead_local_pid_is_stale_immediately(self, memory_repo):
        job = running_job(memory_repo, dead_local_worker_id())
        sweeper = StaleJobSweeper(memory_repo, lease_ms=3_600_000.0)
        assert sweeper.is_stale(job, now_ms())

    def test_live_local_pid_with_fresh_heartbeat_is_not_stale(self, memory_repo):
        job = running_job(memory_repo, f"{os.getpid()}@{os.uname().nodename}")
        sweeper = StaleJobSweeper(memory_repo, lease_ms=60_000.0)
        assert not sweeper.is_stale(job, now_ms())

    def test_remote_worker_goes_stale_by_heartbeat(self, memory_repo):
        job = running_job(memory_repo, "12345@elsewhere")
        sweeper = StaleJobSweeper(memory_repo, lease_ms=1_000.0)
        assert not sweeper.is_stale(job, now_ms())
        assert sweeper.is_stale(job, now_ms() + 2_000.0)

    def test_pending_jobs_are_never_stale(self, memory_repo):
        job = memory_repo.submit(Job.new(JobSpec(figure="fig2"), now_ms()))
        sweeper = StaleJobSweeper(memory_repo, lease_ms=1.0)
        assert not sweeper.is_stale(job, now_ms() + 1_000_000.0)

    def test_invalid_lease_rejected(self, memory_repo):
        with pytest.raises(ValueError, match="lease_ms"):
            StaleJobSweeper(memory_repo, lease_ms=0)


class TestSweep:
    def test_requeues_dead_workers_job(self, memory_repo):
        job = running_job(memory_repo, dead_local_worker_id())
        touched = StaleJobSweeper(memory_repo).sweep()
        assert [j.job_id for j in touched] == [job.job_id]
        requeued = memory_repo.get(job.job_id)
        assert requeued.state == PENDING
        assert requeued.retries == 1
        assert requeued.worker_id is None

    def test_leaves_live_jobs_alone(self, memory_repo):
        running_job(memory_repo, f"{os.getpid()}@{os.uname().nodename}")
        assert StaleJobSweeper(memory_repo, lease_ms=60_000.0).sweep() == []

    def test_exhausted_budget_fails_instead_of_cycling(self, memory_repo):
        job = running_job(
            memory_repo, dead_local_worker_id(), retries=2, max_retries=2
        )
        StaleJobSweeper(memory_repo).sweep()
        final = memory_repo.get(job.job_id)
        assert final.state == FAILED
        assert "requeue budget is exhausted" in final.error

    def test_requeued_job_is_claimable_again(self, memory_repo):
        running_job(memory_repo, dead_local_worker_id())
        StaleJobSweeper(memory_repo).sweep()
        claimed = memory_repo.claim("next@worker", now_ms())
        assert claimed is not None
        assert claimed.state == RUNNING
