"""Stale-job sweeper tests: dead pids, stale heartbeats, requeue bounds,
the poison-job circuit breaker, lease clamping and steal accounting."""

import dataclasses
import os

import pytest

from repro.jobs import (
    FAILED,
    PENDING,
    QUARANTINED,
    RUNNING,
    AdminService,
    Job,
    JobSpec,
    StaleJobSweeper,
)
from repro.jobs.sweeper import LeaseClampWarning
from repro.jobs.repository import now_ms


def running_job(repo, worker_id, retries=0, max_retries=3):
    job = Job.new(JobSpec(figure="fig2"), now_ms=now_ms(), max_retries=max_retries)
    stored = repo.submit(job)
    claimed = repo.update(stored.claimed(worker_id, now_ms()))
    if retries:
        claimed = repo.update(dataclasses.replace(claimed, retries=retries))
    return claimed


def dead_local_worker_id() -> str:
    """A worker id on this host whose pid certainly does not exist."""
    pid = os.fork()
    if pid == 0:
        os._exit(0)  # noqa: SLF001 -- child exits immediately
    os.waitpid(pid, 0)
    return f"{pid}@{os.uname().nodename}"


class TestStaleness:
    def test_dead_local_pid_is_stale_immediately(self, memory_repo):
        job = running_job(memory_repo, dead_local_worker_id())
        sweeper = StaleJobSweeper(memory_repo, lease_ms=3_600_000.0)
        assert sweeper.is_stale(job, now_ms())

    def test_live_local_pid_with_fresh_heartbeat_is_not_stale(self, memory_repo):
        job = running_job(memory_repo, f"{os.getpid()}@{os.uname().nodename}")
        sweeper = StaleJobSweeper(memory_repo, lease_ms=60_000.0)
        assert not sweeper.is_stale(job, now_ms())

    def test_remote_worker_goes_stale_by_heartbeat(self, memory_repo):
        job = running_job(memory_repo, "12345@elsewhere")
        sweeper = StaleJobSweeper(memory_repo, lease_ms=1_000.0)
        assert not sweeper.is_stale(job, now_ms())
        assert sweeper.is_stale(job, now_ms() + 2_000.0)

    def test_pending_jobs_are_never_stale(self, memory_repo):
        job = memory_repo.submit(Job.new(JobSpec(figure="fig2"), now_ms()))
        sweeper = StaleJobSweeper(memory_repo, lease_ms=1.0)
        assert not sweeper.is_stale(job, now_ms() + 1_000_000.0)

    def test_invalid_lease_rejected(self, memory_repo):
        with pytest.raises(ValueError, match="lease_ms"):
            StaleJobSweeper(memory_repo, lease_ms=0)


class TestSweep:
    def test_requeues_dead_workers_job(self, memory_repo):
        job = running_job(memory_repo, dead_local_worker_id())
        touched = StaleJobSweeper(memory_repo).sweep()
        assert [j.job_id for j in touched] == [job.job_id]
        requeued = memory_repo.get(job.job_id)
        assert requeued.state == PENDING
        assert requeued.retries == 1
        assert requeued.worker_id is None

    def test_leaves_live_jobs_alone(self, memory_repo):
        running_job(memory_repo, f"{os.getpid()}@{os.uname().nodename}")
        assert StaleJobSweeper(memory_repo, lease_ms=60_000.0).sweep() == []

    def test_exhausted_budget_fails_instead_of_cycling(self, memory_repo):
        job = running_job(
            memory_repo, dead_local_worker_id(), retries=2, max_retries=2
        )
        StaleJobSweeper(memory_repo).sweep()
        final = memory_repo.get(job.job_id)
        assert final.state == FAILED
        assert "requeue budget is exhausted" in final.error

    def test_requeued_job_is_claimable_again(self, memory_repo):
        running_job(memory_repo, dead_local_worker_id())
        StaleJobSweeper(memory_repo).sweep()
        claimed = memory_repo.claim("next@worker", now_ms())
        assert claimed is not None
        assert claimed.state == RUNNING

    def test_requeue_attaches_forensics(self, memory_repo):
        job = running_job(memory_repo, dead_local_worker_id())
        StaleJobSweeper(memory_repo).sweep()
        requeued = memory_repo.get(job.job_id)
        assert len(requeued.attempts) == 1
        attempt = requeued.attempts[0]
        assert attempt.outcome == "worker-died"
        assert attempt.worker_id == job.worker_id
        assert "pid is gone" in attempt.detail


class TestCircuitBreaker:
    def kill_and_sweep(self, repo, sweeper, rounds):
        """Claim with a dead pid and sweep, ``rounds`` times."""
        for _ in range(rounds):
            claimed = repo.claim(dead_local_worker_id(), now_ms())
            assert claimed is not None
            sweeper.sweep()

    def test_consecutive_deaths_trip_quarantine(self, memory_repo):
        job = memory_repo.submit(
            Job.new(JobSpec(figure="fig2"), now_ms(), max_retries=10)
        )
        sweeper = StaleJobSweeper(memory_repo, quarantine_after=3)
        self.kill_and_sweep(memory_repo, sweeper, rounds=3)
        final = memory_repo.get(job.job_id)
        assert final.state == QUARANTINED
        assert final.is_terminal
        assert "3 consecutive worker deaths" in final.error
        assert len(final.attempts) == 3
        assert all(a.outcome == "worker-died" for a in final.attempts)
        assert sweeper.stats.quarantined == 1
        assert sweeper.stats.requeued == 2

    def test_quarantined_job_is_not_claimable(self, memory_repo):
        memory_repo.submit(
            Job.new(JobSpec(figure="fig2"), now_ms(), max_retries=10)
        )
        sweeper = StaleJobSweeper(memory_repo, quarantine_after=2)
        self.kill_and_sweep(memory_repo, sweeper, rounds=2)
        assert memory_repo.claim("next@worker", now_ms()) is None

    def test_worker_failure_requeues_do_not_count_as_deaths(self, memory_repo):
        """Outcome "failed" breaks the streak: only deaths trip the breaker."""
        job = memory_repo.submit(
            Job.new(JobSpec(figure="fig2"), now_ms(), max_retries=10)
        )
        sweeper = StaleJobSweeper(memory_repo, quarantine_after=2)
        # death, failure, death: never two *consecutive* deaths.
        claimed = memory_repo.claim(dead_local_worker_id(), now_ms())
        sweeper.sweep()
        claimed = memory_repo.claim("alive@unit", now_ms())
        memory_repo.update(
            claimed.requeued(now_ms(), outcome="failed", detail="boom")
        )
        claimed = memory_repo.claim(dead_local_worker_id(), now_ms())
        sweeper.sweep()
        final = memory_repo.get(job.job_id)
        assert final.state == PENDING
        assert final.consecutive_worker_deaths == 1

    def test_release_breaks_the_death_streak(self, memory_repo):
        job = memory_repo.submit(
            Job.new(JobSpec(figure="fig2"), now_ms(), max_retries=10)
        )
        sweeper = StaleJobSweeper(memory_repo, quarantine_after=2)
        self.kill_and_sweep(memory_repo, sweeper, rounds=2)
        assert memory_repo.get(job.job_id).state == QUARANTINED

        released = AdminService(memory_repo).quarantine_release(job.job_id)
        assert released.state == PENDING
        assert released.retries == 0
        assert released.consecutive_worker_deaths == 0
        # One more death does not re-trip the breaker (streak restarted).
        self.kill_and_sweep(memory_repo, sweeper, rounds=1)
        assert memory_repo.get(job.job_id).state == PENDING

    def test_quarantine_disabled_falls_back_to_budget(self, memory_repo):
        job = memory_repo.submit(
            Job.new(JobSpec(figure="fig2"), now_ms(), max_retries=1)
        )
        sweeper = StaleJobSweeper(memory_repo, quarantine_after=None)
        self.kill_and_sweep(memory_repo, sweeper, rounds=2)
        final = memory_repo.get(job.job_id)
        assert final.state == FAILED
        assert sweeper.stats.failed == 1

    def test_invalid_quarantine_after_rejected(self, memory_repo):
        with pytest.raises(ValueError, match="quarantine_after"):
            StaleJobSweeper(memory_repo, quarantine_after=0)


class TestLeaseSanity:
    def slow_job(self, repo, points_done=4, interval_ms=10_000.0):
        """A RUNNING remote job whose heartbeats are ``interval_ms`` apart."""
        start_ms = now_ms() - points_done * interval_ms
        job = Job.new(JobSpec(figure="fig2"), now_ms=start_ms)
        stored = repo.submit(job)
        claimed = repo.update(stored.claimed("12345@elsewhere", start_ms))
        progressed = dataclasses.replace(
            claimed.progressed(points_done, start_ms + points_done * interval_ms),
            started_ms=start_ms,
        )
        return repo.update(progressed)

    def test_short_lease_is_clamped_for_observed_slow_jobs(self, memory_repo):
        job = self.slow_job(memory_repo, points_done=4, interval_ms=10_000.0)
        sweeper = StaleJobSweeper(memory_repo, lease_ms=1_000.0)
        # Heartbeat 15 s old: inside the clamped lease (2 x 10 s), so the
        # live-but-slow worker keeps its job despite the 1 s configured lease.
        with pytest.warns(LeaseClampWarning, match="clamping"):
            assert not sweeper.is_stale(job, job.heartbeat_ms + 15_000.0)
        assert sweeper.stats.lease_clamps == 1
        # 25 s old is beyond even the clamped lease: genuinely stale.
        with pytest.warns(LeaseClampWarning):
            assert sweeper.is_stale(job, job.heartbeat_ms + 25_000.0)

    def test_sane_lease_does_not_warn(self, memory_repo):
        job = self.slow_job(memory_repo, points_done=4, interval_ms=100.0)
        sweeper = StaleJobSweeper(memory_repo, lease_ms=30_000.0)
        assert not sweeper.is_stale(job, job.heartbeat_ms + 1_000.0)
        assert sweeper.stats.lease_clamps == 0

    def test_heartbeat_steals_are_counted(self, memory_repo):
        running_job(memory_repo, "12345@elsewhere")
        sweeper = StaleJobSweeper(
            memory_repo, lease_ms=1_000.0, clock=lambda: now_ms() + 10_000.0
        )
        touched = sweeper.sweep()
        assert len(touched) == 1
        assert sweeper.stats.steals == 1
        assert sweeper.stats.requeued == 1

    def test_dead_pid_requeues_are_not_steals(self, memory_repo):
        running_job(memory_repo, dead_local_worker_id())
        sweeper = StaleJobSweeper(memory_repo)
        sweeper.sweep()
        assert sweeper.stats.steals == 0
        assert sweeper.stats.requeued == 1

    def test_stats_round_trip_as_dict(self, memory_repo):
        stats = StaleJobSweeper(memory_repo).stats
        assert stats.as_dict() == {
            "swept": 0,
            "requeued": 0,
            "failed": 0,
            "quarantined": 0,
            "steals": 0,
            "lease_clamps": 0,
        }
