"""Zombie-worker fencing: stale lease epochs cannot clobber the new owner.

The regression the tentpole demands: a worker requeued by the sweeper
(presumed dead) that later wakes up holds a provably stale lease --
every write it attempts (heartbeat, progress, result, terminal
transition) must be rejected with ``StaleJobError``, on every backend,
and the worker-side preemption check must stand down even when the new
owker reuses the zombie's worker id (pid reuse).
"""

import pytest

from repro.jobs import (
    COMPLETED,
    RUNNING,
    FileJobRepository,
    JobSpec,
    JobWorker,
    MemoryJobRepository,
    SqliteJobRepository,
    StaleJobError,
)
from repro.jobs.lifecycle import Job
from repro.jobs.repository import now_ms


@pytest.fixture(params=["memory", "file", "sqlite"])
def repo(request, tmp_path):
    if request.param == "memory":
        return MemoryJobRepository()
    if request.param == "sqlite":
        return SqliteJobRepository(tmp_path / "queue")
    return FileJobRepository(tmp_path / "queue")


def zombie_scenario(repo):
    """Claim by A, sweeper requeue, claim by B; returns A's stale copy."""
    repo.submit(Job.new(JobSpec(figure="fig2"), now_ms=now_ms()))
    zombie_copy = repo.claim("zombie@h", now_ms())
    assert zombie_copy.epoch == 1
    # The sweeper decides A is dead and requeues; B picks the job up.
    requeued = repo.update(zombie_copy.requeued(now_ms()))
    new_owner = repo.claim("owner@h", now_ms())
    assert new_owner.job_id == requeued.job_id
    assert new_owner.epoch == 2
    return zombie_copy, new_owner


class TestZombieWritesAreFenced:
    def test_heartbeat_rejected(self, repo):
        zombie, _ = zombie_scenario(repo)
        with pytest.raises(StaleJobError, match="fenced"):
            repo.update(zombie.heartbeat(now_ms()))

    def test_progress_rejected(self, repo):
        zombie, _ = zombie_scenario(repo)
        with pytest.raises(StaleJobError, match="epoch"):
            repo.update(zombie.progressed(1, now_ms()))

    def test_result_rejected(self, repo):
        zombie, _ = zombie_scenario(repo)
        with pytest.raises(StaleJobError, match="stand down"):
            repo.update(zombie.completed("late result", now_ms()))

    def test_terminal_transition_rejected(self, repo):
        zombie, _ = zombie_scenario(repo)
        with pytest.raises(StaleJobError):
            repo.update(zombie.failed("late failure", now_ms()))

    def test_new_owner_record_is_untouched(self, repo):
        zombie, new_owner = zombie_scenario(repo)
        for late_write in (
            zombie.heartbeat(now_ms()),
            zombie.completed("late", now_ms()),
        ):
            with pytest.raises(StaleJobError):
                repo.update(late_write)
        stored = repo.get(new_owner.job_id)
        assert stored.worker_id == "owner@h"
        assert stored.epoch == 2
        assert stored.state == RUNNING
        assert stored.result_text is None

    def test_new_owner_still_writes_freely(self, repo):
        _, new_owner = zombie_scenario(repo)
        done = repo.update(new_owner.completed("real result", now_ms()))
        assert done.state == COMPLETED
        assert repo.get(done.job_id).result_text == "real result"


class TestWorkerStandsDownOnEpochChange:
    def test_pid_reuse_zombie_is_preempted_by_epoch(
        self, memory_repo, service, tiny_figure, monkeypatch
    ):
        """The new owner reuses the zombie's worker id: the id check alone
        would pass, but the epoch check must still stand the zombie down."""
        service.submit_figure(tiny_figure)
        worker = JobWorker(memory_repo, worker_id="reused@unit")

        original_update = memory_repo.update
        fired = {"done": False}

        def update_then_steal_with_same_id(evolved):
            stored = original_update(evolved)
            if stored.state == RUNNING and stored.points_done and not fired["done"]:
                fired["done"] = True
                requeued = original_update(stored.requeued(now_ms()))
                # A different process with the *same* worker id (pid
                # reuse) claims the requeued job -- only the epoch betrays
                # the steal.
                memory_repo.claim("reused@unit", now_ms())
            return stored

        monkeypatch.setattr(memory_repo, "update", update_then_steal_with_same_id)
        result = worker.run_once()
        final = memory_repo.get(result.job_id)
        assert final.state == RUNNING
        assert final.epoch == 2
        assert final.result_text is None  # the zombie wrote nothing
