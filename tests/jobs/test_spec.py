"""Tests for the serializable job spec."""

import pytest

from repro.engine import EngineConfig
from repro.jobs import JobSpec


class TestJobSpec:
    def test_defaults(self):
        spec = JobSpec(figure="fig9")
        assert spec.kind == "figure"
        assert not spec.fast
        assert spec.engine == EngineConfig()

    def test_round_trip(self):
        spec = JobSpec(
            figure="fig9",
            fast=True,
            engine=EngineConfig(cache_dir="/tmp/q", on_error="collect"),
        )
        assert JobSpec.from_dict(spec.as_dict()) == spec

    def test_fingerprint_is_content_addressed(self):
        a = JobSpec(figure="fig9")
        b = JobSpec.from_dict(a.as_dict())
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != JobSpec(figure="fig9", fast=True).fingerprint()
        assert (
            a.fingerprint()
            != JobSpec(figure="fig9", engine=EngineConfig(jobs=2)).fingerprint()
        )

    def test_empty_figure_rejected(self):
        with pytest.raises(ValueError, match="figure must be non-empty"):
            JobSpec(figure="")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            JobSpec(figure="fig9", kind="simulation")

    def test_engine_must_be_config(self):
        with pytest.raises(TypeError, match="EngineConfig"):
            JobSpec(figure="fig9", engine={"jobs": 2})

    def test_invalid_engine_section_rejected_on_load(self):
        payload = JobSpec(figure="fig9").as_dict()
        payload["engine"]["jobs"] = 0
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            JobSpec.from_dict(payload)
