"""The shared :class:`JobStore` conformance suite.

Every backend -- memory, JSON-dir, SQLite -- must satisfy the same five
primitives with the same semantics (atomic insert, read, CAS replace,
scan, remove), because the whole queue protocol (claims, fencing,
requeues) is built generically on top of them.  The durable backends
additionally face the crash-consistency cases: an injected ``torn_write``
or ``disk_full`` must leave the old record intact and readable.
"""

import pytest

from repro.faults import InjectedKill, inject, reset as faults_reset
from repro.jobs import (
    FileJobStore,
    Job,
    JobSpec,
    MemoryJobStore,
    SqliteJobStore,
    StaleJobError,
    UnknownJobError,
)
from repro.jobs.repository import now_ms

BACKENDS = ("memory", "file", "sqlite")
DURABLE_BACKENDS = ("file", "sqlite")


def make_store(kind, tmp_path):
    if kind == "memory":
        return MemoryJobStore()
    if kind == "file":
        return FileJobStore(tmp_path / "queue")
    return SqliteJobStore(tmp_path / "queue")


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    store = make_store(request.param, tmp_path)
    yield store
    store.close()


@pytest.fixture(params=DURABLE_BACKENDS)
def durable_store(request, tmp_path):
    store = make_store(request.param, tmp_path)
    yield store
    store.close()


def fresh(figure="fig2", created_ms=None) -> Job:
    return Job.new(JobSpec(figure=figure), now_ms=created_ms or now_ms())


class TestPrimitives:
    def test_insert_then_read_round_trips(self, store):
        job = fresh()
        store.insert(job)
        assert store.read(job.job_id) == job

    def test_insert_duplicate_rejected(self, store):
        job = fresh()
        store.insert(job)
        with pytest.raises(ValueError, match="already exists"):
            store.insert(job)

    def test_read_unknown_raises(self, store):
        with pytest.raises(UnknownJobError):
            store.read("nope")

    def test_scan_returns_every_record(self, store):
        jobs = [fresh(created_ms=float(i)) for i in range(3)]
        for job in jobs:
            store.insert(job)
        assert {j.job_id for j in store.scan()} == {j.job_id for j in jobs}

    def test_scan_empty_store(self, store):
        assert store.scan() == []

    def test_remove(self, store):
        job = fresh()
        store.insert(job)
        store.remove(job.job_id)
        with pytest.raises(UnknownJobError):
            store.read(job.job_id)
        with pytest.raises(UnknownJobError):
            store.remove(job.job_id)


class TestCompareAndSwap:
    def test_replace_with_matching_version_wins(self, store):
        job = fresh()
        store.insert(job)
        evolved = job.claimed("w@h", now_ms(), epoch=1)
        from dataclasses import replace as _replace

        store.replace(_replace(evolved, version=1), expected_version=0)
        assert store.read(job.job_id).version == 1

    def test_replace_with_stale_version_rejected(self, store):
        from dataclasses import replace as _replace

        job = fresh()
        store.insert(job)
        winner = _replace(job.claimed("w1@h", now_ms(), epoch=1), version=1)
        store.replace(winner, expected_version=0)
        loser = _replace(job.claimed("w2@h", now_ms(), epoch=1), version=1)
        with pytest.raises(StaleJobError, match="version"):
            store.replace(loser, expected_version=0)
        # The winner's record is untouched by the losing attempt.
        assert store.read(job.job_id).worker_id == "w1@h"

    def test_replace_vanished_job_raises_unknown(self, store):
        job = fresh()
        with pytest.raises(UnknownJobError):
            store.replace(job, expected_version=0)

    def test_exactly_one_of_n_sequential_casers_wins(self, store):
        """N writers all holding version 0: exactly one replace lands."""
        from dataclasses import replace as _replace

        job = fresh()
        store.insert(job)
        wins = 0
        for i in range(8):
            contender = _replace(
                job.claimed(f"w{i}@h", now_ms(), epoch=1), version=1
            )
            try:
                store.replace(contender, expected_version=0)
                wins += 1
            except StaleJobError:
                pass
        assert wins == 1


class TestDurability:
    def test_records_survive_reopening(self, durable_store, tmp_path):
        job = fresh()
        durable_store.insert(job)
        durable_store.close()
        reopened = type(durable_store)(tmp_path / "queue")
        try:
            assert reopened.read(job.job_id) == job
        finally:
            reopened.close()

    def test_torn_write_preserves_the_old_record(self, durable_store):
        """A simulated death mid-write must leave the previous value."""
        from dataclasses import replace as _replace

        job = fresh()
        durable_store.insert(job)
        evolved = _replace(job.claimed("w@h", now_ms(), epoch=1), version=1)
        with inject("torn_write"):
            with pytest.raises(InjectedKill):
                durable_store.replace(evolved, expected_version=0)
        faults_reset()
        stored = durable_store.read(job.job_id)
        assert stored.version == 0
        assert stored.state == job.state

    def test_disk_full_raises_enospc_and_preserves_record(self, durable_store):
        import errno
        from dataclasses import replace as _replace

        job = fresh()
        durable_store.insert(job)
        evolved = _replace(job.claimed("w@h", now_ms(), epoch=1), version=1)
        with inject("disk_full"):
            with pytest.raises(OSError) as excinfo:
                durable_store.replace(evolved, expected_version=0)
        assert excinfo.value.errno == errno.ENOSPC
        faults_reset()
        assert durable_store.read(job.job_id).version == 0

    def test_torn_insert_leaves_no_record(self, durable_store):
        job = fresh()
        with inject("torn_write"):
            with pytest.raises(InjectedKill):
                durable_store.insert(job)
        faults_reset()
        with pytest.raises(UnknownJobError):
            durable_store.read(job.job_id)

    def test_cache_dir_is_stable(self, durable_store, tmp_path):
        assert durable_store.cache_dir == str(tmp_path / "queue" / "cache")
