"""Submission-facade tests: submit, wait, result, reuse, cache wiring."""

import pytest

from repro.engine import EngineConfig
from repro.jobs import (
    COMPLETED,
    FileJobRepository,
    JobNotFinished,
    JobService,
)


class TestSubmit:
    def test_submit_stores_a_pending_job(self, service, tiny_figure):
        job = service.submit_figure(tiny_figure, max_retries=5)
        stored = service.status(job.job_id)
        assert stored.spec.figure == tiny_figure
        assert stored.max_retries == 5

    def test_memory_repo_keeps_config_untouched(self, service, tiny_figure):
        job = service.submit_figure(tiny_figure)
        assert job.spec.engine == EngineConfig()

    def test_file_repo_wires_the_shared_cache(self, tmp_path, tiny_figure):
        repo = FileJobRepository(tmp_path / "q")
        job = JobService(repo).submit_figure(tiny_figure)
        assert job.spec.engine.cache_dir == repo.cache_dir

    def test_explicit_cache_config_wins(self, tmp_path, tiny_figure):
        repo = FileJobRepository(tmp_path / "q")
        job = JobService(repo).submit_figure(
            tiny_figure, config=EngineConfig(cache_dir=str(tmp_path / "mine"))
        )
        assert job.spec.engine.cache_dir == str(tmp_path / "mine")

    def test_reuse_completed_returns_the_finished_job(
        self, service, memory_repo, worker, tiny_figure
    ):
        first = service.submit_figure(tiny_figure)
        worker.run_once()
        again = service.submit_figure(tiny_figure, reuse_completed=True)
        assert again.job_id == first.job_id
        assert again.state == COMPLETED

    def test_reuse_requires_an_identical_spec(
        self, service, worker, tiny_figure
    ):
        first = service.submit_figure(tiny_figure)
        worker.run_once()
        other = service.submit_figure(
            tiny_figure, config=EngineConfig(jobs=2), reuse_completed=True
        )
        assert other.job_id != first.job_id

    def test_without_reuse_a_duplicate_is_enqueued(
        self, service, worker, tiny_figure
    ):
        first = service.submit_figure(tiny_figure)
        worker.run_once()
        second = service.submit_figure(tiny_figure)
        assert second.job_id != first.job_id


class TestObservation:
    def test_result_of_unfinished_job_raises(self, service, tiny_figure):
        job = service.submit_figure(tiny_figure)
        with pytest.raises(JobNotFinished, match="pending"):
            service.result(job.job_id)

    def test_result_of_failed_job_raises_with_error(self, service, worker):
        job = service.submit_figure("not-a-figure", max_retries=0)
        worker.run_once()
        with pytest.raises(JobNotFinished, match="not-a-figure"):
            service.result(job.job_id)

    def test_wait_returns_terminal_job(self, service, worker, tiny_figure):
        job = service.submit_figure(tiny_figure)
        worker.run_once()
        final = service.wait(job.job_id, timeout_ms=1_000.0)
        assert final.state == COMPLETED

    def test_wait_times_out_on_stuck_job(self, service, tiny_figure):
        job = service.submit_figure(tiny_figure)
        with pytest.raises(TimeoutError, match="still pending"):
            service.wait(job.job_id, timeout_ms=50.0, poll_interval_ms=10.0)


class TestCancel:
    def test_cancel_is_idempotent_on_terminal_jobs(
        self, service, worker, tiny_figure
    ):
        job = service.submit_figure(tiny_figure)
        worker.run_once()
        final = service.cancel(job.job_id)
        assert final.state == COMPLETED  # unchanged
