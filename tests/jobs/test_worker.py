"""Worker execution tests: progress, results, cancellation, retries."""

from repro.experiments.runner import execute_figure
from repro.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
    JobWorker,
)
from repro.jobs.repository import now_ms

from tests.jobs.conftest import TINY_POINTS


class TestExecution:
    def test_completes_with_blocking_path_result(self, service, worker, tiny_figure):
        job = service.submit_figure(tiny_figure)
        done = worker.run_once()
        assert done.job_id == job.job_id
        assert done.state == COMPLETED
        assert service.result(job.job_id) == execute_figure(tiny_figure)

    def test_progress_counts_every_point(self, service, worker, tiny_figure):
        service.submit_figure(tiny_figure)
        done = worker.run_once()
        assert done.points_done == len(TINY_POINTS)
        assert done.heartbeat_ms is not None

    def test_empty_queue_is_a_noop(self, worker):
        assert worker.run_once() is None

    def test_run_until_drained(self, service, worker, tiny_figure):
        for _ in range(3):
            service.submit_figure(tiny_figure)
        done = worker.run_until_drained()
        assert len(done) == 3
        assert all(j.state == COMPLETED for j in done)
        assert worker.run_once() is None

    def test_max_jobs_bounds_the_drain(self, service, worker, tiny_figure):
        for _ in range(3):
            service.submit_figure(tiny_figure)
        assert len(worker.run_until_drained(max_jobs=2)) == 2
        assert len(service.list_jobs(state=PENDING)) == 1

    def test_unknown_figure_fails_after_retry_budget(self, service, worker):
        job = service.submit_figure("not-a-figure", max_retries=1)
        first = worker.run_once()
        assert first.state == PENDING  # retry budget: requeued once
        assert first.retries == 1
        second = worker.run_once()
        assert second.state == FAILED
        assert "not-a-figure" in second.error
        assert second.job_id == job.job_id

    def test_failure_without_budget_fails_immediately(self, service, worker):
        service.submit_figure("not-a-figure", max_retries=0)
        done = worker.run_once()
        assert done.state == FAILED
        assert "KeyError" in done.error


class TestCancellation:
    def test_cancel_requested_before_start_is_never_claimed(
        self, service, worker, tiny_figure
    ):
        job = service.submit_figure(tiny_figure)
        service.cancel(job.job_id)
        assert worker.run_once() is None
        assert service.status(job.job_id).state == CANCELLED

    def test_cancel_mid_run_stops_cooperatively(
        self, service, memory_repo, tiny_figure, monkeypatch
    ):
        """Cancel lands while the sweep runs; the worker stops and records it."""
        job = service.submit_figure(tiny_figure)
        worker = JobWorker(memory_repo, worker_id="w@unit")

        # Trigger the cancel from inside the run: after the first progress
        # write, the next cancel-hook poll must observe the flag.
        original_update = memory_repo.update
        fired = {"done": False}

        def update_then_cancel(evolved):
            stored = original_update(evolved)
            if stored.state == RUNNING and stored.points_done and not fired["done"]:
                fired["done"] = True
                service.cancel(stored.job_id)
            return stored

        monkeypatch.setattr(memory_repo, "update", update_then_cancel)
        done = worker.run_once()
        assert done.state == CANCELLED
        assert done.job_id == job.job_id
        assert 0 < done.points_done < len(TINY_POINTS)

    def test_preempted_worker_stands_down_silently(
        self, service, memory_repo, tiny_figure, monkeypatch
    ):
        """A sweeper requeue mid-run: the old worker must not write anything."""
        service.submit_figure(tiny_figure)
        worker = JobWorker(memory_repo, worker_id="old@unit")

        original_update = memory_repo.update
        fired = {"done": False}

        def update_then_steal(evolved):
            stored = original_update(evolved)
            if stored.state == RUNNING and stored.points_done and not fired["done"]:
                fired["done"] = True
                # Simulate the sweeper + a new worker taking over.
                requeued = original_update(stored.requeued(now_ms()))
                original_update(requeued.claimed("new@unit", now_ms()))
            return stored

        monkeypatch.setattr(memory_repo, "update", update_then_steal)
        result = worker.run_once()
        final = memory_repo.get(result.job_id)
        assert final.state == RUNNING
        assert final.worker_id == "new@unit"  # old worker wrote nothing
        assert final.retries == 1
