"""CLI tests: ``python -m repro.jobs`` drives a durable queue end to end.

Subprocess-based on purpose: the CLI is the cross-process interface, so
these tests exercise real process boundaries (submit in one process,
execute in another) against one queue directory.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.runner import execute_figure

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def queue_dir(tmp_path):
    return str(tmp_path / "queue")


def cli(queue_dir, *args, env_extra=None, check=True):
    env = dict(os.environ, PYTHONPATH=SRC)
    if env_extra:
        env.update(env_extra)
    result = subprocess.run(  # noqa: RL003 -- subprocess timeout is seconds by stdlib contract
        [sys.executable, "-m", "repro.jobs", "--dir", queue_dir, *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if check:
        assert result.returncode == 0, (result.stdout, result.stderr)
    return result


class TestRoundTrip:
    def test_submit_worker_result(self, queue_dir):
        job_id = cli(queue_dir, "submit", "fig2").stdout.strip()
        assert job_id

        status = json.loads(cli(queue_dir, "status", job_id).stdout)
        assert status["state"] == "pending"

        worker_out = cli(queue_dir, "worker").stdout
        assert "completed" in worker_out

        result = cli(queue_dir, "result", job_id).stdout
        assert result == execute_figure("fig2") + "\n"

    def test_watch_returns_when_terminal(self, queue_dir):
        job_id = cli(queue_dir, "submit", "fig2").stdout.strip()
        cli(queue_dir, "worker")
        watch = cli(queue_dir, "watch", job_id, "--timeout-ms", "1000")
        assert "completed" in watch.stdout

    def test_cancel_pending_job(self, queue_dir):
        job_id = cli(queue_dir, "submit", "fig2").stdout.strip()
        cancel = cli(queue_dir, "cancel", job_id)
        assert "cancelled" in cancel.stdout
        # A cancelled job yields no work.
        assert cli(queue_dir, "worker").stdout == ""

    def test_list_and_admin_stats(self, queue_dir):
        cli(queue_dir, "submit", "fig2")
        listing = cli(queue_dir, "list").stdout
        assert "pending" in listing and "fig2" in listing
        stats = json.loads(cli(queue_dir, "admin", "stats").stdout)
        assert stats["jobs"] == 1
        assert stats["states"]["pending"] == 1

    def test_engine_json_reaches_the_spec(self, queue_dir):
        job_id = cli(
            queue_dir, "submit", "fig2", "--engine-json", '{"on_error": "collect"}'
        ).stdout.strip()
        status = json.loads(cli(queue_dir, "status", job_id).stdout)
        assert status["spec"]["engine"]["on_error"] == "collect"
        # The queue's shared cache is still wired in.
        assert status["spec"]["engine"]["cache_dir"].endswith("cache")

    def test_result_of_pending_job_exits_nonzero(self, queue_dir):
        job_id = cli(queue_dir, "submit", "fig2").stdout.strip()
        result = cli(queue_dir, "result", job_id, check=False)
        assert result.returncode == 3
        assert "pending" in result.stderr

    def test_unknown_job_exits_nonzero(self, queue_dir):
        result = cli(queue_dir, "status", "nope", check=False)
        assert result.returncode == 2


class TestBackendSelection:
    def test_sqlite_round_trip(self, queue_dir):
        job_id = cli(
            queue_dir, "--backend", "sqlite", "submit", "fig2"
        ).stdout.strip()
        assert (Path(queue_dir) / "jobs.sqlite3").exists()
        # auto re-opens the sqlite backend without being told.
        cli(queue_dir, "worker")
        result = cli(queue_dir, "result", job_id).stdout
        assert result == execute_figure("fig2") + "\n"

    def test_auto_keeps_using_the_file_backend(self, queue_dir):
        cli(queue_dir, "submit", "fig2")
        assert not (Path(queue_dir) / "jobs.sqlite3").exists()
        assert (Path(queue_dir) / "jobs").is_dir()
        listing = cli(queue_dir, "--backend", "auto", "list").stdout
        assert "fig2" in listing


class TestQuarantineCommands:
    def test_quarantine_list_empty(self, queue_dir):
        cli(queue_dir, "submit", "fig2")
        assert cli(queue_dir, "admin", "quarantine-list").stdout == ""

    def test_release_requires_a_job_id(self, queue_dir):
        cli(queue_dir, "submit", "fig2")
        result = cli(queue_dir, "admin", "quarantine-release", check=False)
        assert result.returncode == 2
        assert "needs a job id" in result.stderr

    def test_release_of_non_quarantined_job_exits_nonzero(self, queue_dir):
        job_id = cli(queue_dir, "submit", "fig2").stdout.strip()
        result = cli(
            queue_dir, "admin", "quarantine-release", job_id, check=False
        )
        assert result.returncode == 4
        assert "illegal transition" in result.stderr
