"""HTTP front-end tests: every route is a thin shim over the services."""

import json
import threading
import urllib.request
from urllib.error import HTTPError

import pytest

from repro.experiments.runner import execute_figure
from repro.jobs import COMPLETED, JobWorker
from repro.jobs.http import make_server


@pytest.fixture
def server(memory_repo):
    srv = make_server(memory_repo, port=0, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5.0)  # noqa: RL003 -- Thread.join timeout is seconds by stdlib contract


@pytest.fixture
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def get(url: str):
    with urllib.request.urlopen(url) as response:
        body = response.read().decode()
        if response.headers.get_content_type() == "application/json":
            return response.status, json.loads(body)
        return response.status, body


def post(url: str, payload: dict | None = None):
    data = json.dumps(payload or {}).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read().decode())


class TestRoutes:
    def test_submit_status_result_round_trip(
        self, base_url, memory_repo, tiny_figure
    ):
        status, job = post(f"{base_url}/jobs", {"figure": tiny_figure})
        assert status == 201
        assert job["state"] == "pending"

        JobWorker(memory_repo).run_once()

        _, fetched = get(f"{base_url}/jobs/{job['job_id']}")
        assert fetched["state"] == COMPLETED
        _, result = get(f"{base_url}/jobs/{job['job_id']}/result")
        assert result == execute_figure(tiny_figure)

    def test_submit_with_engine_section(self, base_url, memory_repo, tiny_figure):
        _, job = post(
            f"{base_url}/jobs",
            {"figure": tiny_figure, "engine": {"cache_memory": True}},
        )
        assert memory_repo.get(job["job_id"]).spec.engine.cache_memory

    def test_list_with_state_filter(self, base_url, tiny_figure):
        post(f"{base_url}/jobs", {"figure": tiny_figure})
        _, pending = get(f"{base_url}/jobs?state=pending")
        assert len(pending) == 1
        _, running = get(f"{base_url}/jobs?state=running")
        assert running == []

    def test_cancel_route(self, base_url, tiny_figure):
        _, job = post(f"{base_url}/jobs", {"figure": tiny_figure})
        _, cancelled = post(f"{base_url}/jobs/{job['job_id']}/cancel")
        assert cancelled["state"] == "cancelled"

    def test_admin_stats_and_purge(self, base_url, memory_repo, tiny_figure):
        _, job = post(f"{base_url}/jobs", {"figure": tiny_figure})
        JobWorker(memory_repo).run_once()
        _, stats = get(f"{base_url}/admin/stats")
        assert stats["states"][COMPLETED] == 1
        _, purged = post(f"{base_url}/admin/purge")
        assert purged == {"purged": [job["job_id"]]}


class TestErrors:
    def test_unknown_job_is_404(self, base_url):
        with pytest.raises(HTTPError) as excinfo:
            get(f"{base_url}/jobs/nope")
        assert excinfo.value.code == 404

    def test_result_of_pending_job_is_409(self, base_url, tiny_figure):
        _, job = post(f"{base_url}/jobs", {"figure": tiny_figure})
        with pytest.raises(HTTPError) as excinfo:
            get(f"{base_url}/jobs/{job['job_id']}/result")
        assert excinfo.value.code == 409

    def test_submit_without_figure_is_400(self, base_url):
        with pytest.raises(HTTPError) as excinfo:
            post(f"{base_url}/jobs", {})
        assert excinfo.value.code == 400

    def test_bad_engine_section_is_400(self, base_url, tiny_figure):
        with pytest.raises(HTTPError) as excinfo:
            post(f"{base_url}/jobs", {"figure": tiny_figure, "engine": {"jobs": 0}})
        assert excinfo.value.code == 400

    def test_unknown_route_is_404(self, base_url):
        with pytest.raises(HTTPError) as excinfo:
            get(f"{base_url}/nope")
        assert excinfo.value.code == 404

    def test_bad_state_filter_is_400(self, base_url):
        with pytest.raises(HTTPError) as excinfo:
            get(f"{base_url}/jobs?state=exploded")
        assert excinfo.value.code == 400


class TestQuarantineRoutes:
    def quarantine_one(self, memory_repo):
        from repro.jobs import Job, JobSpec
        from repro.jobs.repository import now_ms

        memory_repo.submit(Job.new(JobSpec(figure="fig2"), now_ms()))
        claimed = memory_repo.claim("dead@unit", now_ms())
        return memory_repo.update(claimed.quarantined(now_ms()))

    def test_quarantine_list_route(self, base_url, memory_repo):
        _, empty = get(f"{base_url}/admin/quarantine")
        assert empty == []
        poisoned = self.quarantine_one(memory_repo)
        _, listed = get(f"{base_url}/admin/quarantine")
        assert [j["job_id"] for j in listed] == [poisoned.job_id]
        assert listed[0]["attempts"][0]["outcome"] == "worker-died"

    def test_quarantine_release_route(self, base_url, memory_repo):
        poisoned = self.quarantine_one(memory_repo)
        status, released = post(
            f"{base_url}/admin/quarantine/{poisoned.job_id}/release"
        )
        assert status == 200
        assert released["state"] == "pending"

    def test_release_of_unquarantined_job_is_409(
        self, base_url, memory_repo, tiny_figure
    ):
        status, job = post(f"{base_url}/jobs", {"figure": tiny_figure})
        with pytest.raises(HTTPError) as excinfo:
            post(f"{base_url}/admin/quarantine/{job['job_id']}/release")
        assert excinfo.value.code == 409

    def test_release_of_unknown_job_is_404(self, base_url):
        with pytest.raises(HTTPError) as excinfo:
            post(f"{base_url}/admin/quarantine/nope/release")
        assert excinfo.value.code == 404
