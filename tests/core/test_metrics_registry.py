"""Tests for the string-keyed metric registry and the p ~ 0 guard."""

import warnings

import numpy as np
import pytest

from repro.core import METRICS, FgBgModel, Metric, resolve_metric
from repro.core.metrics import NEAR_ZERO_BG_PROBABILITY
from repro.processes import PoissonProcess

MU = 1 / 6.0


def solved(p=0.3, rho=0.4):
    return FgBgModel(
        arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p
    ).solve()


class TestRegistry:
    def test_paper_keys_present(self):
        for key in ("qlen_fg", "qlen_bg", "waitp_fg", "comp_bg"):
            assert key in METRICS

    def test_every_entry_is_callable_metric(self):
        s = solved()
        for key, metric in METRICS.items():
            assert isinstance(metric, Metric)
            assert metric.key == key
            assert isinstance(metric(s), float)

    def test_paper_metrics_map_to_solution_fields(self):
        s = solved()
        assert METRICS["qlen_fg"](s) == s.fg_queue_length
        assert METRICS["qlen_bg"](s) == s.bg_queue_length
        assert METRICS["waitp_fg"](s) == s.fg_delayed_fraction
        assert METRICS["comp_bg"](s) == s.bg_completion_rate

    def test_labels_and_descriptions_nonempty(self):
        for metric in METRICS.values():
            assert metric.label
            assert metric.description


class TestResolveMetric:
    def test_resolves_key(self):
        assert resolve_metric("qlen_fg") is METRICS["qlen_fg"]

    def test_passes_through_callable(self):
        fn = lambda s: s.fg_queue_length  # noqa: E731
        assert resolve_metric(fn) is fn

    def test_unknown_key_lists_choices(self):
        with pytest.raises(KeyError, match="unknown metric.*qlen_fg"):
            resolve_metric("bogus")


class TestNearZeroBgProbability:
    """Below NEAR_ZERO_BG_PROBABILITY the chain has no background states,
    so bg_completion_rate is a deliberate NaN -- including exactly p = 0,
    and without any numpy RuntimeWarning."""

    @pytest.mark.parametrize("p", [0.0, 1e-12, 1e-10])
    def test_nan_below_threshold(self, p):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            s = solved(p=p)
        assert np.isnan(s.bg_completion_rate)
        assert np.isnan(s.bg_response_time)
        assert s.bg_queue_length == 0.0

    def test_finite_just_above_threshold(self):
        s = solved(p=2e-9)
        assert 0.0 <= s.bg_completion_rate <= 1.0

    def test_threshold_value(self):
        assert NEAR_ZERO_BG_PROBABILITY == 1e-9

    def test_other_metrics_consistent_at_zero(self):
        zero = solved(p=0.0)
        tiny = solved(p=1e-12)
        assert tiny.fg_queue_length == pytest.approx(
            zero.fg_queue_length, rel=1e-9
        )
        assert tiny.bg_server_share == 0.0
