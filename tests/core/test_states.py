"""Tests for the FG/BG state-space enumeration (paper Figure 3)."""

import numpy as np
import pytest

from repro.core.states import BoundaryGroup, StateKind, StateSpace


class TestCounts:
    @pytest.mark.parametrize("x,expected", [(0, 1), (1, 4), (2, 9), (5, 36)])
    def test_boundary_group_count_is_square(self, x, expected):
        assert StateSpace(x, 1).boundary_group_count == expected

    @pytest.mark.parametrize("x,expected", [(0, 1), (1, 3), (2, 5), (5, 11)])
    def test_repeating_group_count(self, x, expected):
        assert StateSpace(x, 1).repeating_group_count == expected

    def test_phase_expansion(self):
        space = StateSpace(2, 3)
        assert space.boundary_state_count == 9 * 3
        assert space.repeating_state_count == 5 * 3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="bg_buffer"):
            StateSpace(-1, 1)
        with pytest.raises(ValueError, match="phases"):
            StateSpace(1, 0)


class TestFigure3Structure:
    """The X=2 instance drawn in the paper's Figure 3."""

    def test_level_contents(self):
        space = StateSpace(2, 1)
        by_level: dict[int, list[BoundaryGroup]] = {}
        for g in space.boundary_groups:
            by_level.setdefault(g.level, []).append(g)
        # Level 0: only the empty state.
        assert [(g.kind, g.bg, g.fg) for g in by_level[0]] == [(StateKind.IDLE, 0, 0)]
        # Level 1: F(0,1), B(1,0), I(1).
        assert [(g.kind, g.bg, g.fg) for g in by_level[1]] == [
            (StateKind.FG, 0, 1),
            (StateKind.BG, 1, 0),
            (StateKind.IDLE, 1, 0),
        ]
        # Level 2: F(0,2), F(1,1), B(1,1), B(2,0), I(2).
        assert [(g.kind, g.bg, g.fg) for g in by_level[2]] == [
            (StateKind.FG, 0, 2),
            (StateKind.FG, 1, 1),
            (StateKind.BG, 1, 1),
            (StateKind.BG, 2, 0),
            (StateKind.IDLE, 2, 0),
        ]

    def test_repeating_groups_alternate_fg_bg(self):
        space = StateSpace(2, 1)
        assert [(g.kind, g.bg) for g in space.repeating_groups] == [
            (StateKind.FG, 0),
            (StateKind.FG, 1),
            (StateKind.BG, 1),
            (StateKind.FG, 2),
            (StateKind.BG, 2),
        ]

    def test_level_invariant_enforced(self):
        with pytest.raises(ValueError, match="level"):
            BoundaryGroup(level=2, kind=StateKind.FG, bg=0, fg=1)


class TestLookups:
    def test_boundary_roundtrip(self):
        space = StateSpace(3, 2)
        for i, g in enumerate(space.boundary_groups):
            assert space.boundary_group_index(g.kind, g.bg, g.fg) == i

    def test_repeating_roundtrip(self):
        space = StateSpace(3, 2)
        for i, g in enumerate(space.repeating_groups):
            assert space.repeating_group_index(g.kind, g.bg) == i

    def test_missing_boundary_group(self):
        with pytest.raises(KeyError, match="no boundary group"):
            StateSpace(2, 1).boundary_group_index(StateKind.FG, 5, 1)

    def test_missing_repeating_group(self):
        with pytest.raises(KeyError, match="no repeating group"):
            StateSpace(2, 1).repeating_group_index(StateKind.BG, 0)


class TestMetricVectors:
    def test_fg_counts(self):
        space = StateSpace(1, 1)
        # Groups: I(0) | F(0,1) B(1,0) I(1).
        np.testing.assert_array_equal(space.boundary_fg_counts, [0, 1, 0, 0])
        np.testing.assert_array_equal(space.boundary_bg_counts, [0, 0, 1, 1])

    def test_phase_repetition(self):
        space = StateSpace(1, 2)
        np.testing.assert_array_equal(
            space.boundary_fg_counts, [0, 0, 1, 1, 0, 0, 0, 0]
        )

    def test_kind_masks_partition(self):
        space = StateSpace(3, 2)
        total = (
            space.boundary_kind_mask(StateKind.IDLE)
            + space.boundary_kind_mask(StateKind.FG)
            + space.boundary_kind_mask(StateKind.BG)
        )
        np.testing.assert_array_equal(total, np.ones(space.boundary_state_count))

    def test_bg_busy_fg_waiting_mask(self):
        space = StateSpace(2, 1)
        mask = space.boundary_bg_busy_fg_waiting_mask
        groups = space.boundary_groups
        for i, g in enumerate(groups):
            expected = 1.0 if (g.kind is StateKind.BG and g.fg >= 1) else 0.0
            assert mask[i] == expected

    def test_full_buffer_fg_mask(self):
        space = StateSpace(2, 1)
        mask = space.repeating_bg_full_fg_mask
        expected = [
            1.0 if (g.kind is StateKind.FG and g.bg == 2) else 0.0
            for g in space.repeating_groups
        ]
        np.testing.assert_array_equal(mask, expected)

    def test_repr(self):
        assert "bg_buffer=2" in repr(StateSpace(2, 1))
