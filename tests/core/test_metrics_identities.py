"""Identity tests on the model metrics (PASTA, Little, flow balance)."""

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.processes import PoissonProcess, fit_ipp, fit_mmpp2

MU = 1 / 6.0


class TestPASTA:
    """With Poisson arrivals, arrival averages equal time averages."""

    @pytest.mark.parametrize("rho,p", [(0.3, 0.3), (0.6, 0.9)])
    def test_arrival_delayed_equals_bg_share(self, rho, p):
        s = FgBgModel(
            arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p
        ).solve()
        assert s.fg_arrival_delayed_fraction == pytest.approx(
            s.bg_server_share, rel=1e-9
        )

    def test_mmpp_breaks_pasta(self):
        arrival = fit_mmpp2(rate=0.4 * MU, scv=2.4, decay=0.95)
        s = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.6).solve()
        # Bursty arrivals see the system in a different state than a random
        # time instant does.
        assert s.fg_arrival_delayed_fraction != pytest.approx(
            s.bg_server_share, rel=0.01
        )

    def test_ipp_renewal_also_breaks_pasta(self):
        arrival = fit_ipp(mean=1.0 / (0.4 * MU), scv=4.0)
        s = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.6).solve()
        assert s.fg_arrival_delayed_fraction != pytest.approx(
            s.bg_server_share, rel=0.01
        )


class TestStructuralIdentities:
    def test_fg_server_share_equals_utilization(self):
        # The server must spend exactly lambda/mu of its time on FG work.
        arrival = fit_mmpp2(rate=0.55 * MU, scv=2.0, decay=0.9)
        s = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.6).solve()
        assert s.fg_server_share == pytest.approx(0.55, rel=1e-8)

    def test_bg_share_equals_accepted_work(self):
        s = FgBgModel(
            arrival=PoissonProcess(0.4 * MU), service_rate=MU, bg_probability=0.6
        ).solve()
        # Each accepted BG job brings 1/mu expected work.
        assert s.bg_server_share == pytest.approx(
            (s.bg_spawn_rate - s.bg_drop_rate) / MU, rel=1e-8
        )

    def test_completion_rate_consistent_with_rates(self):
        s = FgBgModel(
            arrival=PoissonProcess(0.5 * MU), service_rate=MU, bg_probability=0.9
        ).solve()
        assert s.bg_completion_rate == pytest.approx(
            1.0 - s.bg_drop_rate / s.bg_spawn_rate, rel=1e-9
        )

    def test_delayed_fraction_bounded_by_share_ratio(self):
        # delayed = P(BG serving, FG waiting) / P(FG present); the numerator
        # is at most P(BG serving) and the denominator at least P(FG
        # serving), so delayed <= bg_share / fg_share.
        s = FgBgModel(
            arrival=PoissonProcess(0.4 * MU), service_rate=MU, bg_probability=0.9
        ).solve()
        assert s.fg_delayed_fraction <= s.bg_server_share / s.fg_server_share + 1e-9
