"""Tests for the multiclass background extension (paper's future work)."""

import numpy as np
import pytest

from repro.core import BgServiceMode, FgBgModel
from repro.core.multiclass import MulticlassFgBgModel
from repro.processes import PoissonProcess, fit_mmpp2

MU = 1 / 6.0


def single(rho=0.4, p=0.6, **kwargs) -> FgBgModel:
    return FgBgModel(
        arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p, **kwargs
    )


def multi(rho=0.4, probs=(0.6,), **kwargs) -> MulticlassFgBgModel:
    return MulticlassFgBgModel(
        arrival=PoissonProcess(rho * MU),
        service_rate=MU,
        bg_probabilities=probs,
        **kwargs,
    )


class TestValidation:
    def test_requires_map(self):
        with pytest.raises(TypeError, match="MarkovianArrivalProcess"):
            MulticlassFgBgModel(arrival=1.0, service_rate=MU, bg_probabilities=(0.1,))

    def test_rejects_empty_classes(self):
        with pytest.raises(ValueError, match="at least one"):
            multi(probs=())

    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError, match=">= 0"):
            multi(probs=(0.3, -0.1))

    def test_rejects_probabilities_over_one(self):
        with pytest.raises(ValueError, match="sum"):
            multi(probs=(0.6, 0.6))

    def test_rejects_unstable(self):
        with pytest.raises(ValueError, match="unstable"):
            multi(rho=1.1).solve()

    def test_rejects_zero_buffer(self):
        with pytest.raises(ValueError, match="bg_buffer"):
            multi(bg_buffer=0)


class TestSingleClassEquivalence:
    """With K = 1 the multiclass chain must equal FgBgModel exactly."""

    @pytest.mark.parametrize("rho,p", [(0.3, 0.3), (0.6, 0.9), (0.8, 0.1)])
    def test_poisson(self, rho, p):
        a = single(rho=rho, p=p).solve()
        b = multi(rho=rho, probs=(p,)).solve()
        assert b.fg_queue_length == pytest.approx(a.fg_queue_length, rel=1e-9)
        assert b.bg_queue_length == pytest.approx(a.bg_queue_length, rel=1e-9)
        assert b.fg_delayed_fraction == pytest.approx(a.fg_delayed_fraction, rel=1e-9)
        assert b.bg_completion_rate == pytest.approx(a.bg_completion_rate, rel=1e-9)
        assert b.bg_throughputs[0] == pytest.approx(a.bg_throughput, rel=1e-9)

    def test_mmpp(self):
        arrival = fit_mmpp2(rate=0.4 * MU, scv=2.0, decay=0.9)
        a = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.6).solve()
        b = MulticlassFgBgModel(
            arrival=arrival, service_rate=MU, bg_probabilities=(0.6,)
        ).solve()
        assert b.fg_queue_length == pytest.approx(a.fg_queue_length, rel=1e-9)
        assert b.bg_completion_rate == pytest.approx(a.bg_completion_rate, rel=1e-9)

    def test_rewait_mode(self):
        a = single(bg_mode=BgServiceMode.REWAIT).solve()
        b = multi(bg_mode=BgServiceMode.REWAIT).solve()
        assert b.fg_queue_length == pytest.approx(a.fg_queue_length, rel=1e-9)


class TestAggregation:
    """Splitting one class into several with the same total probability must
    leave every class-aggregate metric unchanged (identical service)."""

    def test_two_way_split(self):
        whole = single(rho=0.5, p=0.6).solve()
        split = multi(rho=0.5, probs=(0.3, 0.3)).solve()
        assert split.fg_queue_length == pytest.approx(whole.fg_queue_length, rel=1e-9)
        assert split.bg_queue_length == pytest.approx(whole.bg_queue_length, rel=1e-9)
        assert split.bg_completion_rate == pytest.approx(
            whole.bg_completion_rate, rel=1e-9
        )
        assert sum(split.bg_throughputs) == pytest.approx(
            whole.bg_throughput, rel=1e-9
        )

    def test_three_way_split(self):
        whole = single(rho=0.4, p=0.6, bg_buffer=3).solve()
        split = multi(rho=0.4, probs=(0.2, 0.2, 0.2), bg_buffer=3).solve()
        assert split.fg_queue_length == pytest.approx(whole.fg_queue_length, rel=1e-8)
        assert split.bg_queue_length == pytest.approx(whole.bg_queue_length, rel=1e-8)


class TestPriorityEffects:
    def test_symmetric_classes_have_equal_throughput(self):
        s = multi(rho=0.5, probs=(0.3, 0.3)).solve()
        assert s.bg_throughputs[0] == pytest.approx(s.bg_throughputs[1], rel=1e-9)

    def test_higher_priority_has_shorter_response(self):
        s = multi(rho=0.5, probs=(0.3, 0.3)).solve()
        assert s.bg_response_times[0] < s.bg_response_times[1]

    def test_response_times_ordered_across_three_classes(self):
        s = multi(rho=0.5, probs=(0.2, 0.2, 0.2), bg_buffer=4).solve()
        r = s.bg_response_times
        assert r[0] < r[1] < r[2]

    def test_higher_priority_has_shorter_queue(self):
        s = multi(rho=0.5, probs=(0.3, 0.3)).solve()
        assert s.bg_queue_lengths[0] < s.bg_queue_lengths[1]

    def test_completion_rate_is_class_independent(self):
        # The buffer is shared, so admission depends only on total
        # occupancy at spawn time -- identical for both classes.
        s = multi(rho=0.6, probs=(0.4, 0.2)).solve()
        assert 0 < s.bg_completion_rate < 1

    def test_class_zero_probability_is_inert(self):
        with_zero = multi(rho=0.5, probs=(0.6, 0.0)).solve()
        without = multi(rho=0.5, probs=(0.6,)).solve()
        assert with_zero.fg_queue_length == pytest.approx(
            without.fg_queue_length, rel=1e-9
        )
        assert with_zero.bg_queue_lengths[1] == pytest.approx(0.0, abs=1e-12)


class TestConservation:
    def test_server_time_partition(self):
        s = multi(rho=0.5, probs=(0.3, 0.2)).solve()
        busy = s.fg_server_share + sum(s.bg_server_shares)
        assert busy < 1.0
        assert s.fg_server_share == pytest.approx(0.5, rel=1e-8)

    def test_throughput_proportional_to_spawn_probability(self):
        s = multi(rho=0.4, probs=(0.4, 0.2)).solve()
        # Same admission probability, so throughput ratio equals the
        # spawn-probability ratio.
        assert s.bg_throughputs[0] / s.bg_throughputs[1] == pytest.approx(
            2.0, rel=1e-6
        )

    def test_total_mass_normalized(self):
        s = multi(rho=0.5, probs=(0.3, 0.3)).solve()
        assert s.qbd_solution.total_mass == pytest.approx(1.0, abs=1e-10)
        assert s.qbd_solution.residual() < 1e-10
