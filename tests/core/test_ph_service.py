"""Tests for the phase-type service extension (paper footnote 3)."""

import numpy as np
import pytest

from repro.core import BgServiceMode, FgBgModel
from repro.core.ph_service import PhServiceFgBgModel
from repro.processes import PhaseType, PoissonProcess, fit_mmpp2
from repro.sim import FgBgSimulator

MU = 1 / 6.0

SHARED_METRICS = (
    "fg_queue_length",
    "bg_queue_length",
    "fg_delayed_fraction",
    "bg_completion_rate",
    "fg_server_share",
    "bg_server_share",
)


def ph_model(service, rho=0.4, p=0.6, **kwargs) -> PhServiceFgBgModel:
    return PhServiceFgBgModel(
        arrival=PoissonProcess(rho * MU),
        service=service,
        bg_probability=p,
        **kwargs,
    )


class TestValidation:
    def test_requires_phase_type(self):
        with pytest.raises(TypeError, match="PhaseType"):
            PhServiceFgBgModel(
                arrival=PoissonProcess(0.05), service=MU, bg_probability=0.3
            )

    def test_requires_positive_p(self):
        with pytest.raises(ValueError, match="bg_probability"):
            ph_model(PhaseType.exponential(MU), p=0.0)

    def test_rejects_unstable(self):
        with pytest.raises(ValueError, match="unstable"):
            ph_model(PhaseType.exponential(MU), rho=1.2).solve()

    def test_default_idle_wait_is_mean_service(self):
        m = ph_model(PhaseType.erlang(2, 2 * MU))
        assert m.wait_distribution.mean == pytest.approx(1.0 / MU)


class TestExponentialEquivalence:
    """PH = Exp(mu) must reproduce the exponential model exactly."""

    @pytest.mark.parametrize("rho,p", [(0.3, 0.3), (0.6, 0.9)])
    def test_poisson_arrivals(self, rho, p):
        a = FgBgModel(
            arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p
        ).solve()
        b = ph_model(PhaseType.exponential(MU), rho=rho, p=p).solve()
        for name in SHARED_METRICS:
            assert getattr(b, name) == pytest.approx(getattr(a, name), rel=1e-9), name

    def test_mmpp_arrivals(self):
        arrival = fit_mmpp2(rate=0.4 * MU, scv=2.0, decay=0.9)
        a = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.6).solve()
        b = PhServiceFgBgModel(
            arrival=arrival, service=PhaseType.exponential(MU), bg_probability=0.6
        ).solve()
        for name in SHARED_METRICS:
            assert getattr(b, name) == pytest.approx(getattr(a, name), rel=1e-9), name

    def test_rewait_mode(self):
        a = FgBgModel(
            arrival=PoissonProcess(0.4 * MU),
            service_rate=MU,
            bg_probability=0.6,
            bg_mode=BgServiceMode.REWAIT,
        ).solve()
        b = ph_model(
            PhaseType.exponential(MU), bg_mode=BgServiceMode.REWAIT
        ).solve()
        assert b.fg_queue_length == pytest.approx(a.fg_queue_length, rel=1e-9)


class TestServiceVariabilityEffects:
    def test_erlang_reduces_fg_queue(self):
        expo = ph_model(PhaseType.exponential(MU)).solve()
        erlang = ph_model(PhaseType.erlang(4, 4 * MU)).solve()
        assert erlang.fg_queue_length < expo.fg_queue_length

    def test_hyperexponential_increases_fg_queue(self):
        expo = ph_model(PhaseType.exponential(MU)).solve()
        h2 = ph_model(PhaseType.h2_balanced(1 / MU, scv=4.0)).solve()
        assert h2.fg_queue_length > expo.fg_queue_length

    def test_utilization_unchanged_by_shape(self):
        erlang = ph_model(PhaseType.erlang(4, 4 * MU)).solve()
        assert erlang.fg_server_share == pytest.approx(0.4, rel=1e-8)

    def test_residual_small(self):
        s = ph_model(PhaseType.erlang(3, 3 * MU), rho=0.6).solve()
        assert s.qbd_solution.residual() < 1e-10


class TestAgainstSimulation:
    def test_erlang_service_matches_simulation(self):
        service = PhaseType.erlang(3, 3 * MU)
        analytic = ph_model(service).solve()
        proxy = FgBgModel(
            arrival=PoissonProcess(0.4 * MU), service_rate=MU, bg_probability=0.6
        )
        sim = FgBgSimulator(proxy, service=service).run(
            400_000.0, np.random.default_rng(5)
        )
        for name in SHARED_METRICS:
            assert getattr(sim, name) == pytest.approx(
                getattr(analytic, name), rel=0.08, abs=0.01
            ), name
