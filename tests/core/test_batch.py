"""Tests for the batch-arrival extension (M/G/1-type model)."""

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.core.batch import BatchFgBgModel
from repro.processes import PoissonProcess, fit_mmpp2
from repro.sim import FgBgSimulator

MU = 1 / 6.0

SHARED_METRICS = (
    "fg_queue_length",
    "bg_queue_length",
    "fg_delayed_fraction",
    "bg_completion_rate",
    "fg_server_share",
    "bg_server_share",
)


def batch_model(batches=(0.5, 0.3, 0.2), event_rate=0.2 * MU, p=0.6, **kwargs):
    return BatchFgBgModel(
        arrival=PoissonProcess(event_rate),
        batch_probabilities=batches,
        service_rate=MU,
        bg_probability=p,
        **kwargs,
    )


class TestValidation:
    def test_rejects_bad_batch_probabilities(self):
        with pytest.raises(ValueError, match="sum to 1"):
            batch_model(batches=(0.5, 0.2))

    def test_rejects_negative_batch_probability(self):
        with pytest.raises(ValueError, match="non-negative|sum to 1"):
            batch_model(batches=(1.5, -0.5))

    def test_rejects_empty_batches(self):
        with pytest.raises(ValueError, match="at least one"):
            batch_model(batches=())

    def test_rejects_unstable(self):
        with pytest.raises(ValueError, match="unstable"):
            batch_model(event_rate=0.6 * MU, batches=(0.0, 1.0)).solve()

    def test_mean_batch_size(self):
        assert batch_model().mean_batch_size == pytest.approx(1.7)

    def test_utilization_accounts_for_batches(self):
        m = batch_model(batches=(0.0, 1.0), event_rate=0.2 * MU)
        assert m.fg_utilization == pytest.approx(0.4)


class TestUnitBatchEquivalence:
    """Batch size identically 1 must equal the base QBD model exactly."""

    @pytest.mark.parametrize("rho,p", [(0.3, 0.3), (0.6, 0.9)])
    def test_poisson(self, rho, p):
        base = FgBgModel(
            arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p
        ).solve()
        batch = BatchFgBgModel(
            arrival=PoissonProcess(rho * MU),
            batch_probabilities=(1.0,),
            service_rate=MU,
            bg_probability=p,
        ).solve()
        for name in SHARED_METRICS:
            assert getattr(batch, name) == pytest.approx(
                getattr(base, name), rel=1e-8
            ), name

    def test_mmpp(self):
        arrival = fit_mmpp2(rate=0.4 * MU, scv=2.0, decay=0.9)
        base = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.6).solve()
        batch = BatchFgBgModel(
            arrival=arrival,
            batch_probabilities=(1.0,),
            service_rate=MU,
            bg_probability=0.6,
        ).solve()
        assert batch.fg_queue_length == pytest.approx(base.fg_queue_length, rel=1e-8)
        assert batch.bg_completion_rate == pytest.approx(
            base.bg_completion_rate, rel=1e-8
        )


class TestBatchEffects:
    def test_batching_inflates_queue_at_equal_load(self):
        # Same offered job load, bigger batches -> burstier -> longer queue.
        single = BatchFgBgModel(
            arrival=PoissonProcess(0.4 * MU),
            batch_probabilities=(1.0,),
            service_rate=MU,
            bg_probability=0.6,
        ).solve()
        double = BatchFgBgModel(
            arrival=PoissonProcess(0.2 * MU),
            batch_probabilities=(0.0, 1.0),
            service_rate=MU,
            bg_probability=0.6,
        ).solve()
        assert double.fg_queue_length > single.fg_queue_length

    def test_batching_hurts_bg_completion(self):
        single = BatchFgBgModel(
            arrival=PoissonProcess(0.4 * MU),
            batch_probabilities=(1.0,),
            service_rate=MU,
            bg_probability=0.6,
        ).solve()
        triple = BatchFgBgModel(
            arrival=PoissonProcess(0.4 * MU / 3.0),
            batch_probabilities=(0.0, 0.0, 1.0),
            service_rate=MU,
            bg_probability=0.6,
        ).solve()
        assert triple.bg_completion_rate < single.bg_completion_rate

    def test_server_share_matches_load(self):
        s = batch_model().solve()
        assert s.fg_server_share == pytest.approx(0.34, rel=1e-6)


class TestAgainstSimulation:
    def test_geometric_like_batches(self):
        batches = (0.5, 0.3, 0.2)
        analytic = batch_model(batches=batches).solve()
        proxy = FgBgModel(
            arrival=PoissonProcess(0.2 * MU), service_rate=MU, bg_probability=0.6
        )
        sim = FgBgSimulator(proxy, batch_probabilities=batches).run(
            800_000.0, np.random.default_rng(3)
        )
        for name in SHARED_METRICS:
            assert getattr(sim, name) == pytest.approx(
                getattr(analytic, name), rel=0.08, abs=0.01
            ), name

    def test_simulator_validates_batch_probabilities(self):
        proxy = FgBgModel(
            arrival=PoissonProcess(0.05), service_rate=MU, bg_probability=0.3
        )
        with pytest.raises(ValueError, match="sum to 1"):
            FgBgSimulator(proxy, batch_probabilities=(0.4, 0.4))
