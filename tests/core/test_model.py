"""Tests for the FgBgModel facade."""

import numpy as np
import pytest

from repro.core import BgServiceMode, FgBgModel
from repro.markov import stationary_distribution
from repro.processes import PoissonProcess, fit_mmpp2

MU = 1 / 6.0


def poisson_model(rho=0.3, p=0.3, **kwargs) -> FgBgModel:
    return FgBgModel(
        arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p, **kwargs
    )


class TestValidation:
    def test_requires_map_arrival(self):
        with pytest.raises(TypeError, match="MarkovianArrivalProcess"):
            FgBgModel(arrival=0.3, service_rate=MU, bg_probability=0.1)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="bg_probability"):
            poisson_model(p=-0.1)

    def test_rejects_bad_buffer(self):
        with pytest.raises(ValueError, match="bg_buffer"):
            poisson_model(bg_buffer=-1)

    def test_rejects_bad_idle_rate(self):
        with pytest.raises(ValueError, match="idle_wait_rate"):
            poisson_model(idle_wait_rate=0.0)

    def test_unstable_model_raises_on_solve(self):
        m = poisson_model(rho=1.2)
        assert not m.is_stable
        with pytest.raises(ValueError, match="unstable"):
            m.solve()

    def test_critical_load_raises(self):
        with pytest.raises(ValueError, match="unstable"):
            poisson_model(rho=1.0).solve()


class TestMM1Equivalence:
    """With p = 0 and Poisson arrivals the model is exactly M/M/1."""

    @pytest.mark.parametrize("rho", [0.1, 0.5, 0.9])
    def test_queue_length(self, rho):
        s = poisson_model(rho=rho, p=0.0).solve()
        assert s.fg_queue_length == pytest.approx(rho / (1 - rho), rel=1e-9)

    @pytest.mark.parametrize("rho", [0.2, 0.7])
    def test_response_time(self, rho):
        s = poisson_model(rho=rho, p=0.0).solve()
        assert s.fg_response_time == pytest.approx(1 / (MU * (1 - rho)), rel=1e-9)

    def test_no_bg_activity(self):
        s = poisson_model(rho=0.5, p=0.0).solve()
        assert s.bg_queue_length == 0.0
        assert s.bg_server_share == 0.0
        assert s.fg_delayed_fraction == 0.0
        assert np.isnan(s.bg_completion_rate)


class TestAgainstTruncatedChain:
    """The matrix-geometric solve must match a brute-force dense solve of
    the truncated chain on every metric-relevant probability."""

    @pytest.mark.parametrize("p", [0.2, 0.9])
    @pytest.mark.parametrize("x", [1, 3])
    def test_boundary_probabilities(self, p, x):
        m = FgBgModel(
            arrival=fit_mmpp2(rate=0.4 * MU, scv=2.0, decay=0.9),
            service_rate=MU,
            bg_probability=p,
            bg_buffer=x,
        )
        sol = m.solve()
        qbd = m.qbd
        levels = 250
        pi = stationary_distribution(qbd.truncated_generator(levels), method="dense")
        n_b = qbd.boundary_size
        np.testing.assert_allclose(pi[:n_b], sol.qbd_solution.boundary, atol=1e-8)
        np.testing.assert_allclose(
            pi[n_b : n_b + qbd.phase_count], sol.qbd_solution.level(1), atol=1e-8
        )

    def test_queue_length_matches_truncated_sum(self):
        m = FgBgModel(
            arrival=fit_mmpp2(rate=0.5 * MU, scv=2.0, decay=0.85),
            service_rate=MU,
            bg_probability=0.5,
            bg_buffer=2,
        )
        sol = m.solve()
        space = m.state_space
        qbd = m.qbd
        levels = 300
        pi = stationary_distribution(qbd.truncated_generator(levels), method="dense")
        n_b = qbd.boundary_size
        fg = float(pi[:n_b] @ space.boundary_fg_counts)
        x_r = space.repeating_bg_counts
        x_max = space.bg_buffer
        for k in range(1, levels + 1):
            lo = n_b + (k - 1) * qbd.phase_count
            level_pi = pi[lo : lo + qbd.phase_count]
            fg += float(level_pi @ (x_max + k - x_r))
        assert sol.fg_queue_length == pytest.approx(fg, abs=1e-7)


class TestQualitativeBehaviour:
    def test_queue_length_increases_with_load(self):
        qlens = [
            poisson_model(rho=rho, p=0.3).solve().fg_queue_length
            for rho in (0.2, 0.4, 0.6, 0.8)
        ]
        assert all(a < b for a, b in zip(qlens, qlens[1:]))

    def test_completion_rate_decreases_with_load(self):
        comps = [
            poisson_model(rho=rho, p=0.3).solve().bg_completion_rate
            for rho in (0.2, 0.5, 0.8)
        ]
        assert all(a > b for a, b in zip(comps, comps[1:]))

    def test_completion_rate_decreases_with_p(self):
        comps = [
            poisson_model(rho=0.5, p=p).solve().bg_completion_rate
            for p in (0.1, 0.3, 0.6, 0.9)
        ]
        assert all(a > b for a, b in zip(comps, comps[1:]))

    def test_bigger_buffer_improves_completion(self):
        small = poisson_model(rho=0.5, p=0.6, bg_buffer=2).solve()
        large = poisson_model(rho=0.5, p=0.6, bg_buffer=10).solve()
        assert large.bg_completion_rate > small.bg_completion_rate

    def test_longer_idle_wait_reduces_fg_queue(self):
        short = poisson_model(rho=0.5, p=0.6).with_idle_wait_multiple(0.5).solve()
        long = poisson_model(rho=0.5, p=0.6).with_idle_wait_multiple(4.0).solve()
        assert long.fg_queue_length < short.fg_queue_length

    def test_longer_idle_wait_reduces_bg_completion(self):
        short = poisson_model(rho=0.5, p=0.6).with_idle_wait_multiple(0.5).solve()
        long = poisson_model(rho=0.5, p=0.6).with_idle_wait_multiple(4.0).solve()
        assert long.bg_completion_rate < short.bg_completion_rate

    def test_p_one_is_stable_and_sane(self):
        s = poisson_model(rho=0.4, p=1.0).solve()
        assert 0 < s.bg_completion_rate < 1
        assert s.bg_spawn_rate == pytest.approx(s.fg_throughput)

    def test_rewait_serves_fewer_bg_jobs(self):
        btb = poisson_model(rho=0.4, p=0.6).solve()
        rew = poisson_model(rho=0.4, p=0.6, bg_mode=BgServiceMode.REWAIT).solve()
        assert rew.bg_throughput < btb.bg_throughput


class TestSweepHelpers:
    def test_at_utilization_rescales(self):
        m = poisson_model(rho=0.3).at_utilization(0.7)
        assert m.fg_utilization == pytest.approx(0.7)

    def test_at_utilization_preserves_acf(self):
        mmpp = fit_mmpp2(rate=0.02, scv=2.4, decay=0.95)
        m = FgBgModel(arrival=mmpp, service_rate=MU, bg_probability=0.3)
        scaled = m.at_utilization(0.6)
        np.testing.assert_allclose(scaled.arrival.acf(10), mmpp.acf(10), atol=1e-10)

    def test_with_bg_probability(self):
        assert poisson_model(p=0.1).with_bg_probability(0.8).bg_probability == 0.8

    def test_with_idle_wait_multiple(self):
        m = poisson_model().with_idle_wait_multiple(2.0)
        assert m.effective_idle_wait_rate == pytest.approx(MU / 2)

    def test_with_idle_wait_multiple_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            poisson_model().with_idle_wait_multiple(0.0)

    def test_default_idle_wait_equals_service_rate(self):
        assert poisson_model().effective_idle_wait_rate == MU


class TestConservationLaws:
    @pytest.mark.parametrize("p", [0.1, 0.6, 1.0])
    def test_fg_throughput_equals_arrival_rate(self, p):
        m = poisson_model(rho=0.5, p=p)
        s = m.solve()
        assert s.fg_throughput == pytest.approx(m.arrival.mean_rate, rel=1e-8)

    def test_bg_flow_balance(self):
        s = poisson_model(rho=0.5, p=0.6).solve()
        assert s.bg_throughput == pytest.approx(
            s.bg_spawn_rate - s.bg_drop_rate, rel=1e-8
        )

    def test_server_shares_partition_time(self):
        s = poisson_model(rho=0.5, p=0.6).solve()
        total = s.fg_server_share + s.bg_server_share + s.idle_probability
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_solver_algorithms_agree(self):
        m = FgBgModel(
            arrival=fit_mmpp2(rate=0.4 * MU, scv=2.0, decay=0.9),
            service_rate=MU,
            bg_probability=0.5,
        )
        results = [m.solve(algorithm=a) for a in ("logarithmic-reduction", "natural", "functional")]
        for other in results[1:]:
            assert other.fg_queue_length == pytest.approx(
                results[0].fg_queue_length, rel=1e-8
            )

    def test_repr_mentions_parameters(self):
        assert "bg_probability=0.3" in repr(poisson_model())


class TestFingerprint:
    def test_deterministic(self):
        assert poisson_model().fingerprint() == poisson_model().fingerprint()

    def test_sensitive_to_each_field(self):
        base = poisson_model()
        variants = [
            poisson_model(rho=0.31),
            poisson_model(p=0.31),
            poisson_model(bg_buffer=4),
            poisson_model(idle_wait_rate=2 * MU),
            poisson_model(bg_mode=BgServiceMode.REWAIT),
            FgBgModel(
                arrival=fit_mmpp2(rate=0.3 * MU, scv=2.0, decay=0.5),
                service_rate=MU,
                bg_probability=0.3,
            ),
        ]
        fingerprints = {base.fingerprint()} | {
            m.fingerprint() for m in variants
        }
        assert len(fingerprints) == len(variants) + 1

    def test_default_idle_wait_equals_explicit(self):
        # idle_wait_rate=None means "equal to service_rate": same chain,
        # same fingerprint.
        assert (
            poisson_model(idle_wait_rate=None).fingerprint()
            == poisson_model(idle_wait_rate=MU).fingerprint()
        )

    def test_hex_sha256_shape(self):
        fp = poisson_model().fingerprint()
        assert len(fp) == 64
        assert int(fp, 16) >= 0
