"""Tests for the queue-length distributions."""

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.core.distributions import (
    bg_queue_length_pmf,
    fg_queue_length_pmf,
    fg_queue_length_quantile,
)
from repro.processes import PoissonProcess, fit_mmpp2

MU = 1 / 6.0


def solve(rho=0.4, p=0.6, **kwargs):
    return FgBgModel(
        arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p, **kwargs
    ).solve()


class TestFgQueueLengthPmf:
    def test_mm1_geometric(self):
        rho = 0.5
        s = solve(rho=rho, p=0.0)
        pmf = fg_queue_length_pmf(s, 20)
        expected = (1 - rho) * rho ** np.arange(21)
        np.testing.assert_allclose(pmf, expected, atol=1e-10)

    def test_sums_to_one_in_the_limit(self):
        s = solve()
        pmf = fg_queue_length_pmf(s, 200)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-8)

    def test_mean_matches_metric(self):
        s = solve(rho=0.5, p=0.9)
        pmf = fg_queue_length_pmf(s, 400)
        mean = float(np.arange(401) @ pmf)
        assert mean == pytest.approx(s.fg_queue_length, abs=1e-6)

    def test_works_with_mmpp(self):
        m = FgBgModel(
            arrival=fit_mmpp2(rate=0.4 * MU, scv=2.0, decay=0.9),
            service_rate=MU,
            bg_probability=0.6,
        )
        s = m.solve()
        pmf = fg_queue_length_pmf(s, 300)
        assert np.all(pmf >= 0)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-6)
        mean = float(np.arange(301) @ pmf)
        assert mean == pytest.approx(s.fg_queue_length, rel=1e-4)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError, match=">= 0"):
            fg_queue_length_pmf(solve(), -1)


class TestBgQueueLengthPmf:
    def test_bounded_support_sums_to_one(self):
        s = solve(p=0.9)
        pmf = bg_queue_length_pmf(s)
        assert pmf.shape == (6,)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-10)

    def test_mean_matches_metric(self):
        s = solve(rho=0.6, p=0.9)
        pmf = bg_queue_length_pmf(s)
        mean = float(np.arange(6) @ pmf)
        assert mean == pytest.approx(s.bg_queue_length, abs=1e-9)

    def test_p_zero_all_mass_at_zero(self):
        s = solve(p=0.0)
        pmf = bg_queue_length_pmf(s)
        assert pmf[0] == pytest.approx(1.0)

    def test_custom_buffer_size(self):
        s = solve(p=0.9, bg_buffer=3)
        assert bg_queue_length_pmf(s).shape == (4,)


class TestQuantile:
    def test_mm1_quantile(self):
        rho = 0.5
        s = solve(rho=rho, p=0.0)
        # P(N <= k) = 1 - rho^{k+1}; the 0.9 quantile is the smallest k
        # with rho^{k+1} <= 0.1, i.e. k = 3 for rho = 0.5.
        assert fg_queue_length_quantile(s, 0.9) == 3

    def test_monotone_in_q(self):
        s = solve(rho=0.6, p=0.6)
        q50 = fg_queue_length_quantile(s, 0.5)
        q99 = fg_queue_length_quantile(s, 0.99)
        assert q50 <= q99

    def test_matches_pmf_cumsum(self):
        s = solve(rho=0.5, p=0.3)
        pmf = fg_queue_length_pmf(s, 100)
        cdf = np.cumsum(pmf)
        k = fg_queue_length_quantile(s, 0.95)
        assert cdf[k] >= 0.95
        if k > 0:
            assert cdf[k - 1] < 0.95

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError, match="q must"):
            fg_queue_length_quantile(solve(), 1.5)

    def test_cap_reported(self):
        s = solve(rho=0.95, p=0.3)
        with pytest.raises(RuntimeError, match="close to saturation"):
            fg_queue_length_quantile(s, 0.999999, n_max=5)
