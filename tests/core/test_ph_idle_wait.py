"""Tests for the phase-type idle-wait extension (footnote 3, wait process)."""

import numpy as np
import pytest

from repro.core import BgServiceMode, FgBgModel
from repro.core.ph_service import PhServiceFgBgModel
from repro.processes import PhaseType, PoissonProcess, fit_mmpp2
from repro.sim import FgBgSimulator

MU = 1 / 6.0

SHARED_METRICS = (
    "fg_queue_length",
    "bg_queue_length",
    "fg_delayed_fraction",
    "bg_completion_rate",
    "fg_server_share",
    "bg_server_share",
)


def model_with_wait(wait, rho=0.4, p=0.6, **kwargs) -> PhServiceFgBgModel:
    return PhServiceFgBgModel(
        arrival=PoissonProcess(rho * MU),
        service=PhaseType.exponential(MU),
        bg_probability=p,
        idle_wait_ph=wait,
        **kwargs,
    )


class TestValidation:
    def test_rejects_both_wait_specs(self):
        with pytest.raises(ValueError, match="not both"):
            PhServiceFgBgModel(
                arrival=PoissonProcess(0.05),
                service=PhaseType.exponential(MU),
                bg_probability=0.3,
                idle_wait_rate=MU,
                idle_wait_ph=PhaseType.exponential(MU),
            )

    def test_rejects_non_ph_wait(self):
        with pytest.raises(TypeError, match="PhaseType"):
            model_with_wait(wait=0.5)

    def test_default_wait_is_exponential_service_mean(self):
        m = PhServiceFgBgModel(
            arrival=PoissonProcess(0.05),
            service=PhaseType.exponential(MU),
            bg_probability=0.3,
        )
        assert m.wait_distribution.mean == pytest.approx(6.0)
        assert m.wait_distribution.order == 1


class TestExponentialEquivalence:
    @pytest.mark.parametrize("mode", list(BgServiceMode))
    def test_exp_wait_matches_base_model(self, mode):
        ph = model_with_wait(PhaseType.exponential(MU), bg_mode=mode).solve()
        base = FgBgModel(
            arrival=PoissonProcess(0.4 * MU),
            service_rate=MU,
            bg_probability=0.6,
            bg_mode=mode,
        ).solve()
        for name in SHARED_METRICS:
            assert getattr(ph, name) == pytest.approx(getattr(base, name), rel=1e-9), name

    def test_exp_wait_with_mmpp_arrivals(self):
        arrival = fit_mmpp2(rate=0.4 * MU, scv=2.0, decay=0.9)
        ph = PhServiceFgBgModel(
            arrival=arrival,
            service=PhaseType.exponential(MU),
            bg_probability=0.6,
            idle_wait_ph=PhaseType.exponential(MU / 2),
        ).solve()
        base = FgBgModel(
            arrival=arrival,
            service_rate=MU,
            bg_probability=0.6,
            idle_wait_rate=MU / 2,
        ).solve()
        assert ph.fg_queue_length == pytest.approx(base.fg_queue_length, rel=1e-9)
        assert ph.bg_completion_rate == pytest.approx(base.bg_completion_rate, rel=1e-9)


class TestDeterministicTimer:
    def test_erlang_wait_solves_cleanly(self):
        s = model_with_wait(PhaseType.erlang(8, 8 * MU)).solve()
        assert s.qbd_solution.residual() < 1e-10
        assert 0 < s.bg_completion_rate < 1

    def test_timer_shape_changes_bg_admission(self):
        exp_wait = model_with_wait(PhaseType.exponential(MU)).solve()
        det_wait = model_with_wait(PhaseType.erlang(8, 8 * MU)).solve()
        # Same mean wait, different shape: metrics must genuinely differ.
        assert det_wait.bg_completion_rate != pytest.approx(
            exp_wait.bg_completion_rate, rel=1e-3
        )

    def test_matches_simulation(self):
        wait = PhaseType.erlang(4, 4 * MU)
        analytic = model_with_wait(wait).solve()
        proxy = FgBgModel(
            arrival=PoissonProcess(0.4 * MU), service_rate=MU, bg_probability=0.6
        )
        sim = FgBgSimulator(proxy, idle_wait_ph=wait).run(
            500_000.0, np.random.default_rng(5)
        )
        for name in SHARED_METRICS:
            assert getattr(sim, name) == pytest.approx(
                getattr(analytic, name), rel=0.08, abs=0.01
            ), name

    def test_fg_mean_identity_still_holds(self):
        # The Poisson-arrivals identity (FG response depends only on the
        # accepted BG rate) holds for any wait distribution too.
        from repro.vacation.priority import NonPreemptivePriorityQueue

        s = model_with_wait(PhaseType.erlang(8, 8 * MU)).solve()
        accepted = MU * s.bg_server_share
        cobham = NonPreemptivePriorityQueue(
            lam_high=0.4 * MU, lam_low=accepted, mu=MU
        )
        assert s.fg_response_time == pytest.approx(
            cobham.high_response_time, rel=1e-8
        )
