"""Tests for the FgBgSolution container."""

import math

from repro.core import FgBgModel
from repro.processes import PoissonProcess

MU = 1 / 6.0


def solution(p=0.3):
    return FgBgModel(
        arrival=PoissonProcess(0.3 * MU), service_rate=MU, bg_probability=p
    ).solve()


class TestAsDict:
    def test_contains_all_scalar_metrics(self):
        d = solution().as_dict()
        expected = {
            "fg_queue_length",
            "bg_queue_length",
            "fg_delayed_fraction",
            "fg_arrival_delayed_fraction",
            "bg_completion_rate",
            "fg_server_share",
            "bg_server_share",
            "idle_probability",
            "fg_throughput",
            "bg_throughput",
            "bg_spawn_rate",
            "bg_drop_rate",
            "fg_response_time",
            "bg_response_time",
            "fg_utilization",
        }
        assert set(d) == expected

    def test_excludes_qbd_solution(self):
        assert "qbd_solution" not in solution().as_dict()


class TestSummary:
    def test_one_line_per_metric(self):
        s = solution()
        lines = s.summary().splitlines()
        assert len(lines) == len(s.as_dict()) + 1

    def test_nan_rendered(self):
        s = solution(p=0.0)
        assert math.isnan(s.bg_completion_rate)
        assert "nan" in s.summary()

    def test_repr_compact(self):
        assert "fg_queue_length=" in repr(solution())
