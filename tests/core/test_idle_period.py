"""Tests for the idle-period analysis."""

import numpy as np
import pytest

from repro.core import BgServiceMode, FgBgModel
from repro.core.idle_period import analyze_idle_periods
from repro.core.states import StateKind
from repro.processes import PoissonProcess, fit_mmpp2

MU = 1 / 6.0


def make_model(rho=0.4, p=0.6, **kwargs) -> FgBgModel:
    return FgBgModel(
        arrival=PoissonProcess(rho * MU), service_rate=MU, bg_probability=p, **kwargs
    )


def prob_bg_serving_no_fg(model, solution) -> float:
    space = model.state_space
    a = space.phases
    pi_b = solution.qbd_solution.boundary
    return sum(
        float(pi_b[i * a : (i + 1) * a].sum())
        for i, g in enumerate(space.boundary_groups)
        if g.kind is StateKind.BG and g.fg == 0
    )


class TestConsistencyIdentities:
    @pytest.mark.parametrize("p", [0.1, 0.6, 1.0])
    def test_idle_fraction_matches_stationary(self, p):
        model = make_model(p=p)
        solution = model.solve()
        analysis = analyze_idle_periods(model, solution)
        expected = solution.idle_probability + prob_bg_serving_no_fg(model, solution)
        assert analysis.idle_fraction == pytest.approx(expected, rel=1e-9)

    def test_bg_completions_match_stationary_rate(self):
        model = make_model()
        solution = model.solve()
        analysis = analyze_idle_periods(model, solution)
        expected = MU * prob_bg_serving_no_fg(model, solution)
        assert analysis.rate * analysis.mean_bg_completions == pytest.approx(
            expected, rel=1e-9
        )

    def test_poisson_idle_length_is_memoryless(self):
        # With Poisson arrivals the idle period is exactly Exp(lambda).
        model = make_model(rho=0.3)
        analysis = analyze_idle_periods(model)
        assert analysis.mean_length == pytest.approx(1.0 / (0.3 * MU), rel=1e-9)

    def test_mmpp_idle_length_differs_from_mean_interarrival(self):
        arrival = fit_mmpp2(rate=0.3 * MU, scv=2.4, decay=0.95)
        model = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.6)
        analysis = analyze_idle_periods(model)
        # Bursty arrivals: busy periods end disproportionately inside
        # bursts, so the conditional time to the next arrival is far from
        # the unconditional mean.
        assert analysis.mean_length != pytest.approx(
            arrival.mean_interarrival, rel=0.05
        )

    def test_rewait_consistency(self):
        model = make_model(bg_mode=BgServiceMode.REWAIT)
        solution = model.solve()
        analysis = analyze_idle_periods(model, solution)
        expected = solution.idle_probability + prob_bg_serving_no_fg(model, solution)
        assert analysis.idle_fraction == pytest.approx(expected, rel=1e-9)


class TestQualitative:
    def test_longer_idle_wait_raises_no_service_probability(self):
        short = analyze_idle_periods(make_model().with_idle_wait_multiple(0.5))
        long = analyze_idle_periods(make_model().with_idle_wait_multiple(4.0))
        assert long.prob_no_bg_service > short.prob_no_bg_service

    def test_longer_idle_wait_lowers_completions_per_period(self):
        short = analyze_idle_periods(make_model().with_idle_wait_multiple(0.5))
        long = analyze_idle_periods(make_model().with_idle_wait_multiple(4.0))
        assert long.mean_bg_completions < short.mean_bg_completions

    def test_higher_load_shortens_idle_periods(self):
        light = analyze_idle_periods(make_model(rho=0.2))
        heavy = analyze_idle_periods(make_model(rho=0.8))
        assert heavy.mean_length < light.mean_length

    def test_p_zero_serves_nothing(self):
        analysis = analyze_idle_periods(make_model(p=0.0))
        assert analysis.mean_bg_completions == pytest.approx(0.0, abs=1e-12)
        assert analysis.prob_no_bg_service == pytest.approx(1.0)

    def test_probabilities_in_unit_interval(self):
        analysis = analyze_idle_periods(make_model(p=0.9, rho=0.7))
        assert 0 <= analysis.prob_no_bg_service <= 1
        assert 0 <= analysis.idle_fraction <= 1
