"""Tests for the QBD block assembly (paper Figures 3-4, Eq. 6)."""

import numpy as np
import pytest

from repro.core.blocks import BgServiceMode, build_qbd
from repro.core.states import StateKind
from repro.markov import validate_generator
from repro.processes import MMPP, PoissonProcess, fit_mmpp2


def build(arrival, mu=1.0, p=0.3, x=2, alpha=1.0, mode=BgServiceMode.BACK_TO_BACK):
    return build_qbd(
        arrival=arrival,
        service_rate=mu,
        bg_probability=p,
        bg_buffer=x,
        idle_wait_rate=alpha,
        bg_mode=mode,
    )


class TestValidation:
    def test_blocks_form_valid_qbd(self):
        qbd, space = build(PoissonProcess(0.4))
        assert qbd.boundary_size == space.boundary_state_count
        assert qbd.phase_count == space.repeating_state_count

    def test_truncated_generator_valid(self):
        qbd, _ = build(fit_mmpp2(rate=0.4, scv=2.0, decay=0.9), x=3)
        validate_generator(qbd.truncated_generator(6))

    def test_invalid_service_rate(self):
        with pytest.raises(ValueError, match="service_rate"):
            build(PoissonProcess(0.4), mu=0.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError, match="bg_probability"):
            build(PoissonProcess(0.4), p=1.5)

    def test_invalid_idle_wait(self):
        with pytest.raises(ValueError, match="idle_wait_rate"):
            build(PoissonProcess(0.4), alpha=-1.0)

    def test_invalid_mode_type(self):
        with pytest.raises(TypeError, match="BgServiceMode"):
            build(PoissonProcess(0.4), mode="back_to_back")


class TestScalarChainStructure:
    """Spot-check individual rates of the scalar (Poisson) chain against the
    transition rules of the paper's Figure 3."""

    def setup_method(self):
        self.lam, self.mu, self.p, self.alpha = 0.4, 1.0, 0.3, 0.7
        self.qbd, self.space = build(
            PoissonProcess(self.lam), mu=self.mu, p=self.p, x=2, alpha=self.alpha
        )

    def b_idx(self, kind, bg, fg):
        return self.space.boundary_group_index(kind, bg, fg)

    def r_idx(self, kind, bg):
        return self.space.repeating_group_index(kind, bg)

    def test_empty_state_arrival(self):
        i = self.b_idx(StateKind.IDLE, 0, 0)
        j = self.b_idx(StateKind.FG, 0, 1)
        assert self.qbd.b00[i, j] == pytest.approx(self.lam)

    def test_idle_wait_fires_into_bg_service(self):
        i = self.b_idx(StateKind.IDLE, 1, 0)
        j = self.b_idx(StateKind.BG, 1, 0)
        assert self.qbd.b00[i, j] == pytest.approx(self.alpha)

    def test_fg_completion_spawning_bg(self):
        i = self.b_idx(StateKind.FG, 0, 2)
        j = self.b_idx(StateKind.FG, 1, 1)
        assert self.qbd.b00[i, j] == pytest.approx(self.mu * self.p)

    def test_fg_completion_without_spawn(self):
        i = self.b_idx(StateKind.FG, 0, 2)
        j = self.b_idx(StateKind.FG, 0, 1)
        assert self.qbd.b00[i, j] == pytest.approx(self.mu * (1 - self.p))

    def test_last_fg_completion_enters_idle_wait(self):
        i = self.b_idx(StateKind.FG, 1, 1)
        j = self.b_idx(StateKind.IDLE, 1, 0)
        assert self.qbd.b00[i, j] == pytest.approx(self.mu * (1 - self.p))
        j_spawn = self.b_idx(StateKind.IDLE, 2, 0)
        assert self.qbd.b00[i, j_spawn] == pytest.approx(self.mu * self.p)

    def test_bg_completion_resumes_fg(self):
        i = self.b_idx(StateKind.BG, 1, 1)
        j = self.b_idx(StateKind.FG, 0, 1)
        assert self.qbd.b00[i, j] == pytest.approx(self.mu)

    def test_bg_completion_back_to_back(self):
        i = self.b_idx(StateKind.BG, 2, 0)
        j = self.b_idx(StateKind.BG, 1, 0)
        assert self.qbd.b00[i, j] == pytest.approx(self.mu)

    def test_bg_completion_rewait_mode(self):
        qbd, space = build(
            PoissonProcess(self.lam), mu=self.mu, p=self.p, x=2,
            alpha=self.alpha, mode=BgServiceMode.REWAIT,
        )
        i = space.boundary_group_index(StateKind.BG, 2, 0)
        j = space.boundary_group_index(StateKind.IDLE, 1, 0)
        assert qbd.b00[i, j] == pytest.approx(self.mu)

    def test_repeating_a0_is_arrivals(self):
        np.testing.assert_allclose(
            self.qbd.a0, self.lam * np.eye(self.space.repeating_state_count)
        )

    def test_full_buffer_drop_in_a2(self):
        i = self.r_idx(StateKind.FG, 2)
        # With a full buffer every completion (spawn dropped or not) steps
        # the level down within the same group.
        assert self.qbd.a2[i, i] == pytest.approx(self.mu)

    def test_b10_lands_on_idle_from_full_fg(self):
        i = self.r_idx(StateKind.FG, 2)
        j = self.b_idx(StateKind.IDLE, 2, 0)
        assert self.qbd.b10[i, j] == pytest.approx(self.mu)


class TestLiftingEquivalence:
    """Figure 4: a degenerate MMPP(2) with equal rates in both phases must
    produce exactly the Poisson chain's marginal behaviour."""

    def test_degenerate_mmpp_matches_poisson(self):
        from repro.core.model import FgBgModel

        lam, mu = 0.35, 1.0
        poisson_model = FgBgModel(
            arrival=PoissonProcess(lam), service_rate=mu, bg_probability=0.4,
            bg_buffer=2,
        )
        degenerate = MMPP.two_state(v1=0.8, v2=1.3, l1=lam, l2=lam)
        mmpp_model = FgBgModel(
            arrival=degenerate, service_rate=mu, bg_probability=0.4, bg_buffer=2,
        )
        a = poisson_model.solve()
        b = mmpp_model.solve()
        for key, value in a.as_dict().items():
            assert getattr(b, key) == pytest.approx(value, abs=1e-9), key


class TestRowSums:
    @pytest.mark.parametrize("x", [0, 1, 2, 5])
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_global_balance_of_blocks(self, x, p):
        arrival = fit_mmpp2(rate=0.3, scv=2.0, decay=0.9)
        qbd, _ = build(arrival, p=p, x=x)
        # QBDProcess.__post_init__ validates row sums; reaching here means
        # they hold.  Also check the A-blocks directly.
        rows = qbd.a0.sum(axis=1) + qbd.a1.sum(axis=1) + qbd.a2.sum(axis=1)
        np.testing.assert_allclose(rows, 0.0, atol=1e-12)
