"""Tests for the experiment result container and text rendering."""

import numpy as np
import pytest

from repro.experiments.render import render_result, render_table
from repro.experiments.result import ExperimentResult, Series


def make_result():
    s1 = Series(label="p = 0.1", x=np.array([0.1, 0.2]), y=np.array([1.0, 2.0]))
    s2 = Series(label="p = 0.9", x=np.array([0.1, 0.2]), y=np.array([3.0, 4.0]))
    return ExperimentResult(
        experiment_id="figX",
        title="Test figure",
        x_label="load",
        y_label="qlen",
        series=(s1, s2),
        notes="a note",
    )


class TestSeries:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            Series(label="a", x=np.array([1.0]), y=np.array([1.0, 2.0]))

    def test_arrays_coerced_to_float(self):
        s = Series(label="a", x=[1, 2], y=[3, 4])
        assert s.x.dtype == float


class TestExperimentResult:
    def test_series_lookup(self):
        r = make_result()
        assert r.series_by_label("p = 0.9").y[0] == 3.0

    def test_missing_series(self):
        with pytest.raises(KeyError, match="no series"):
            make_result().series_by_label("p = 0.5")

    def test_labels_in_order(self):
        assert make_result().labels == ("p = 0.1", "p = 0.9")

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError, match="no data"):
            ExperimentResult(
                experiment_id="e", title="t", x_label="x", y_label="y", series=()
            )


class TestRenderTable:
    def test_alignment(self):
        rows = (("name", "value"), ("aa", "1.0"), ("b", "22.5"))
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_empty(self):
        assert render_table(()) == ""


class TestRenderResult:
    def test_contains_title_and_series(self):
        text = render_result(make_result())
        assert "figX" in text
        assert "p = 0.1" in text
        assert "a note" in text

    def test_mixed_x_grids_render_separately(self):
        s1 = Series(label="a", x=np.array([0.1, 0.2]), y=np.array([1.0, 2.0]))
        s2 = Series(label="b", x=np.array([0.5, 0.9]), y=np.array([3.0, 4.0]))
        r = ExperimentResult(
            experiment_id="figY",
            title="t",
            x_label="x",
            y_label="y",
            series=(s1, s2),
        )
        text = render_result(r)
        assert text.count("[y]") == 2

    def test_nan_rendered(self):
        s = Series(label="a", x=np.array([0.1]), y=np.array([float("nan")]))
        r = ExperimentResult(
            experiment_id="figZ", title="t", x_label="x", y_label="y", series=(s,)
        )
        assert "nan" in render_result(r)
