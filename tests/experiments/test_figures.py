"""Tests that each reproduced figure exhibits the paper's findings.

These are the headline qualitative claims of the paper's Section 5; each
test pins one of them to the regenerated data.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_trace_acf,
    fig2_mmpp_acf,
    fig5_fg_queue_length,
    fig6_fg_delayed,
    fig7_bg_completion,
    fig8_bg_queue_length,
    fig9_idle_wait_fg,
    fig10_idle_wait_bg,
    fig11_dependence_fg_qlen,
    fig12_dependence_bg_completion,
    fig13_dependence_fg_delayed,
)

# Module-scoped caches: the sweeps are pure functions of their defaults.
pytestmark = pytest.mark.filterwarnings("ignore")


@pytest.fixture(scope="module")
def fig5():
    return fig5_fg_queue_length()


@pytest.fixture(scope="module")
def fig6():
    return fig6_fg_delayed()


@pytest.fixture(scope="module")
def fig7():
    return fig7_bg_completion()


@pytest.fixture(scope="module")
def fig8():
    return fig8_bg_queue_length()


@pytest.fixture(scope="module")
def fig11():
    return fig11_dependence_fg_qlen()


class TestFig1:
    def test_synthetic_traces_show_expected_acf_levels(self):
        r = fig1_trace_acf(samples=60_000, lags=50, seed=2)
        email = r.series_by_label("E-mail")
        softdev = r.series_by_label("Software Development")
        assert email.y[:10].mean() > 0.15
        assert softdev.y[:10].mean() < 0.15
        assert email.y[:10].mean() > softdev.y[:10].mean()

    def test_table_present(self):
        r = fig1_trace_acf(samples=5_000, lags=20)
        assert r.table[0][0] == "workload"
        assert len(r.table) == 4


class TestFig2:
    def test_closed_form_acf_matches_workloads(self):
        r = fig2_mmpp_acf(lags=60)
        email = r.series_by_label("E-mail")
        assert email.y[0] == pytest.approx(0.29, abs=0.01)
        softdev = r.series_by_label("Software Development")
        assert softdev.y[40] < 1e-3

    def test_parameter_table_shape(self):
        r = fig2_mmpp_acf(lags=5)
        assert r.table[0] == ("workload", "v1", "v2", "l1", "l2")
        assert len(r.table) == 4


class TestFig5:
    def test_queue_length_increases_sharply_with_load(self, fig5):
        s = fig5.series_by_label("E-mail High ACF | p = 0.3")
        assert np.all(np.diff(s.y) > 0)
        assert s.y[-1] / s.y[0] > 50

    def test_nearly_insensitive_to_p(self, fig5):
        """Foreground load, not background load, determines FG performance."""
        lo = fig5.series_by_label("E-mail High ACF | p = 0")
        hi = fig5.series_by_label("E-mail High ACF | p = 0.9")
        mid = len(lo.y) // 2
        assert hi.y[mid] < 3.0 * lo.y[mid]

    def test_email_saturates_much_faster_than_softdev(self, fig5):
        email = fig5.series_by_label("E-mail High ACF | p = 0.3")
        softdev = fig5.series_by_label("Software Dev. Low ACF | p = 0.3")
        # Compare at the common load 0.5.
        e = email.y[np.searchsorted(email.x, 0.5)]
        s = softdev.y[np.searchsorted(softdev.x, 0.5)]
        assert e > 5 * s


class TestFig6:
    def test_delayed_fraction_small(self, fig6):
        for s in fig6.series:
            assert np.all(s.y < 0.15)

    def test_rises_with_p(self, fig6):
        lo = fig6.series_by_label("Software Dev. Low ACF | p = 0.1")
        hi = fig6.series_by_label("Software Dev. Low ACF | p = 0.9")
        assert np.all(hi.y >= lo.y)

    def test_rises_then_falls_with_load(self, fig6):
        """The paper's 'most interesting point': beyond a load threshold the
        affected portion drops dramatically."""
        s = fig6.series_by_label("E-mail High ACF | p = 0.9")
        peak = int(np.argmax(s.y))
        assert 0 < peak < len(s.y) - 1
        assert s.y[-1] < 0.6 * s.y[peak]


class TestFig7:
    def test_completion_decreases_to_zero_with_load(self, fig7):
        s = fig7.series_by_label("E-mail High ACF | p = 0.9")
        assert np.all(np.diff(s.y) < 0)
        assert s.y[-1] < 0.3

    def test_email_collapses_sooner_than_softdev(self, fig7):
        email = fig7.series_by_label("E-mail High ACF | p = 0.3")
        softdev = fig7.series_by_label("Software Dev. Low ACF | p = 0.3")
        e = email.y[np.searchsorted(email.x, 0.5)]
        s = softdev.y[np.searchsorted(softdev.x, 0.5)]
        assert e < s


class TestFig8:
    def test_bg_queue_grows_with_load(self, fig8):
        s = fig8.series_by_label("E-mail High ACF | p = 0.6")
        assert np.all(np.diff(s.y) > 0)

    def test_bg_queue_bounded_by_buffer(self, fig8):
        for s in fig8.series:
            assert np.all(s.y <= 5.0)


class TestFig9And10:
    def test_longer_idle_wait_helps_fg(self):
        r = fig9_idle_wait_fg()
        s = r.series_by_label("E-mail High ACF | p = 0.6")
        assert s.y[-1] < s.y[0]

    def test_longer_idle_wait_hurts_bg(self):
        r = fig10_idle_wait_bg()
        s = r.series_by_label("E-mail High ACF | p = 0.6")
        assert np.all(np.diff(s.y) < 0)

    def test_fg_gain_is_marginal_vs_bg_loss(self):
        """The paper's design guidance: idle wait near one service time --
        stretching it wins little FG performance but costs much completion."""
        fg = fig9_idle_wait_fg().series_by_label("E-mail High ACF | p = 0.6")
        bg = fig10_idle_wait_bg().series_by_label("E-mail High ACF | p = 0.6")
        half = np.searchsorted(fg.x, 0.5)
        two = np.searchsorted(fg.x, 2.0)
        fg_gain = (fg.y[half] - fg.y[two]) / fg.y[half]
        bg_loss = (bg.y[half] - bg.y[two]) / bg.y[half]
        assert bg_loss > 2 * fg_gain


class TestFig11:
    def test_correlated_orders_of_magnitude_worse(self, fig11):
        high = fig11.series_by_label("p = 0.3 | High ACF")
        expo = fig11.series_by_label("p = 0.3 | Expo")
        # Queue length reached by the correlated process at ~50% load is
        # reached by Poisson arrivals only far beyond it.
        q_high = high.y[-1]
        assert q_high > 10 * expo.y[np.searchsorted(expo.x, 0.5)]

    def test_variability_alone_is_mild(self, fig11):
        """IPP has the same CV as High ACF but no correlation: its queue
        stays near the Poisson curve, far below the correlated ones."""
        ipp = fig11.series_by_label("p = 0.9 | IPP")
        high = fig11.series_by_label("p = 0.9 | High ACF")
        at_half_ipp = ipp.y[np.searchsorted(ipp.x, 0.5)]
        assert high.y[-1] > 5 * at_half_ipp


class TestFig12And13:
    def test_completion_gap_between_expo_and_correlated(self):
        r = fig12_dependence_bg_completion()
        high = r.series_by_label("p = 0.3 | High ACF")
        expo = r.series_by_label("p = 0.3 | Expo")
        # Near 50% load the correlated system has lost most completions
        # while the Poisson-fed system still completes nearly everything.
        h = high.y[np.searchsorted(high.x, 0.5) - 1]
        e = expo.y[np.searchsorted(expo.x, 0.5)]
        assert e - h > 0.4

    def test_delayed_fraction_peaks_earlier_under_correlation(self):
        r = fig13_dependence_fg_delayed()
        high = r.series_by_label("p = 0.9 | High ACF")
        expo = r.series_by_label("p = 0.9 | Expo")
        peak_high = high.x[int(np.argmax(high.y))]
        peak_expo = expo.x[int(np.argmax(expo.y))]
        assert peak_high < peak_expo
