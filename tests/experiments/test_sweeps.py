"""Tests for the sweep helpers."""

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.engine import EngineConfig, SweepEngine
from repro.experiments.sweeps import (
    BG_PROBABILITIES,
    SweepAxis,
    bg_probability_axis,
    idle_wait_axis,
    sweep,
    sweep_many,
    utilization_axis,
)
from repro.processes import PoissonProcess
from repro.workloads import SERVICE_RATE_PER_MS

MU = SERVICE_RATE_PER_MS


def poisson_base(p=0.0, **kwargs):
    return FgBgModel(
        arrival=PoissonProcess(0.01), service_rate=MU, bg_probability=p, **kwargs
    )


class TestAxes:
    def test_utilization_axis_transform(self):
        axis = utilization_axis([0.2, 0.5])
        models = axis.models(poisson_base())
        assert [m.fg_utilization for m in models] == pytest.approx([0.2, 0.5])

    def test_idle_wait_axis_transform(self):
        axis = idle_wait_axis([0.5, 2.0])
        models = axis.models(poisson_base())
        assert models[0].effective_idle_wait_rate == pytest.approx(MU / 0.5)
        assert models[1].effective_idle_wait_rate == pytest.approx(MU / 2.0)

    def test_bg_probability_axis_transform(self):
        axis = bg_probability_axis([0.1, 0.9])
        models = axis.models(poisson_base())
        assert [m.bg_probability for m in models] == [0.1, 0.9]

    def test_x_is_float_array(self):
        axis = utilization_axis((0.2, 0.4))
        np.testing.assert_array_equal(axis.x(), [0.2, 0.4])
        assert axis.x().dtype == float


class TestSweep:
    def test_metric_by_registry_key(self):
        series = sweep(poisson_base(), utilization_axis([0.5]), "qlen_fg")
        # M/M/1 at rho = 0.5.
        assert series.y[0] == pytest.approx(1.0, rel=1e-9)

    def test_metric_by_callable(self):
        series = sweep(
            poisson_base(),
            utilization_axis([0.5]),
            lambda s: s.fg_queue_length,
        )
        assert series.y[0] == pytest.approx(1.0, rel=1e-9)

    def test_unknown_metric_key_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            sweep(poisson_base(), utilization_axis([0.5]), "nope")

    def test_custom_axis(self):
        axis = SweepAxis(
            name="buffer",
            values=(1.0, 10.0),
            transform=lambda m, x: FgBgModel(
                arrival=m.arrival,
                service_rate=m.service_rate,
                bg_probability=m.bg_probability,
                bg_buffer=int(x),
            ),
        )
        base = poisson_base(p=0.9).at_utilization(0.5)
        series = sweep(base, axis, "comp_bg")
        assert series.y[1] > series.y[0]

    def test_label_defaults_to_axis_name(self):
        axis = utilization_axis([0.3])
        assert sweep(poisson_base(), axis, "qlen_fg").label == axis.name
        assert (
            sweep(poisson_base(), axis, "qlen_fg", label="mine").label == "mine"
        )

    def test_engine_is_used(self):
        engine = SweepEngine()
        sweep(poisson_base(), utilization_axis([0.2, 0.4]), "qlen_fg", engine=engine)
        assert engine.stats.solves == 2

    def test_config_builds_the_engine(self):
        """sweep(config=...) is equivalent to passing the built engine."""
        args = (poisson_base(), utilization_axis([0.2, 0.4]), "qlen_fg")
        via_config = sweep(*args, config=EngineConfig(cache_memory=True))
        via_engine = sweep(*args, engine=EngineConfig(cache_memory=True).build_engine())
        np.testing.assert_array_equal(via_config.y, via_engine.y)

    def test_legacy_knobs_override_config(self):
        series = sweep(
            poisson_base(),
            utilization_axis([0.2]),
            "qlen_fg",
            config=EngineConfig(on_error="raise"),
            on_error="collect",
        )
        assert series.y.shape == (1,)


class TestSweepMany:
    def test_one_series_per_probability(self):
        series = sweep_many(
            poisson_base(),
            utilization_axis([0.2, 0.4]),
            "qlen_fg",
            bg_probabilities=[0.1, 0.9],
        )
        assert [s.label for s in series] == ["p = 0.1", "p = 0.9"]
        assert all(s.x.shape == (2,) for s in series)

    def test_parallel_engine_identical_to_serial(self):
        args = (poisson_base(), utilization_axis([0.2, 0.4, 0.6]), "qlen_fg")
        serial = sweep_many(*args, bg_probabilities=[0.1, 0.6, 0.9])
        parallel = sweep_many(
            *args,
            bg_probabilities=[0.1, 0.6, 0.9],
            engine=SweepEngine(jobs=2),
        )
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.y, p.y)

    def test_config_identical_to_legacy(self):
        args = (poisson_base(), utilization_axis([0.2, 0.4]), "qlen_fg")
        legacy = sweep_many(*args, bg_probabilities=[0.1, 0.9])
        via_config = sweep_many(
            *args, bg_probabilities=[0.1, 0.9], config=EngineConfig()
        )
        for lhs, rhs in zip(legacy, via_config):
            np.testing.assert_array_equal(lhs.y, rhs.y)


class TestLoadSweep:
    """The utilization-sweep shape load_sweep_series used to provide.

    The deprecated wrapper is gone (RL010); these pin the replacement
    spelling -- ``sweep_many`` over ``utilization_axis`` -- to the same
    behavior the wrapper had.
    """

    def test_one_series_per_probability(self):
        series = sweep_many(
            poisson_base(),
            utilization_axis([0.2, 0.4]),
            lambda s: s.fg_queue_length,
            bg_probabilities=[0.1, 0.9],
        )
        assert [s.label for s in series] == ["p = 0.1", "p = 0.9"]
        assert all(s.x.shape == (2,) for s in series)

    def test_metric_applied(self):
        (series,) = sweep_many(
            poisson_base(),
            utilization_axis([0.5]),
            lambda s: s.fg_queue_length,
            bg_probabilities=[0.0],
        )
        # M/M/1 at rho = 0.5.
        assert series.y[0] == pytest.approx(1.0, rel=1e-9)

    def test_model_kwargs_forwarded(self):
        (small,) = sweep_many(
            poisson_base(bg_buffer=1),
            utilization_axis([0.5]),
            lambda s: s.bg_completion_rate,
            bg_probabilities=[0.9],
        )
        (large,) = sweep_many(
            poisson_base(bg_buffer=10),
            utilization_axis([0.5]),
            lambda s: s.bg_completion_rate,
            bg_probabilities=[0.9],
        )
        assert large.y[0] > small.y[0]

    def test_paper_probability_grid(self):
        assert BG_PROBABILITIES == (0.0, 0.1, 0.3, 0.6, 0.9)


class TestIdleWaitSweep:
    """The idle-wait-sweep shape idle_wait_sweep_series used to provide."""

    def test_x_axis_is_multiples(self):
        arrival = PoissonProcess(0.3 * SERVICE_RATE_PER_MS)
        (series,) = sweep_many(
            FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.0),
            idle_wait_axis([0.5, 1.0, 2.0]),
            lambda s: s.bg_completion_rate,
            bg_probabilities=[0.6],
        )
        np.testing.assert_array_equal(series.x, [0.5, 1.0, 2.0])
        assert np.all(np.diff(series.y) < 0)
