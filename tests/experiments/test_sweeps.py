"""Tests for the sweep helpers."""

import warnings

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.engine import SweepEngine
from repro.experiments.sweeps import (
    BG_PROBABILITIES,
    SweepAxis,
    bg_probability_axis,
    idle_wait_axis,
    idle_wait_sweep_series,
    load_sweep_series,
    sweep,
    sweep_many,
    utilization_axis,
)
from repro.experiments import sweeps as sweeps_module
from repro.processes import PoissonProcess
from repro.workloads import SERVICE_RATE_PER_MS

MU = SERVICE_RATE_PER_MS


@pytest.fixture(autouse=True)
def _fresh_deprecation_registry():
    """The wrappers warn once per *process*; tests need once per *test*."""
    sweeps_module._warned_deprecations.clear()
    yield
    sweeps_module._warned_deprecations.clear()


def poisson_base(p=0.0, **kwargs):
    return FgBgModel(
        arrival=PoissonProcess(0.01), service_rate=MU, bg_probability=p, **kwargs
    )


class TestAxes:
    def test_utilization_axis_transform(self):
        axis = utilization_axis([0.2, 0.5])
        models = axis.models(poisson_base())
        assert [m.fg_utilization for m in models] == pytest.approx([0.2, 0.5])

    def test_idle_wait_axis_transform(self):
        axis = idle_wait_axis([0.5, 2.0])
        models = axis.models(poisson_base())
        assert models[0].effective_idle_wait_rate == pytest.approx(MU / 0.5)
        assert models[1].effective_idle_wait_rate == pytest.approx(MU / 2.0)

    def test_bg_probability_axis_transform(self):
        axis = bg_probability_axis([0.1, 0.9])
        models = axis.models(poisson_base())
        assert [m.bg_probability for m in models] == [0.1, 0.9]

    def test_x_is_float_array(self):
        axis = utilization_axis((0.2, 0.4))
        np.testing.assert_array_equal(axis.x(), [0.2, 0.4])
        assert axis.x().dtype == float


class TestSweep:
    def test_metric_by_registry_key(self):
        series = sweep(poisson_base(), utilization_axis([0.5]), "qlen_fg")
        # M/M/1 at rho = 0.5.
        assert series.y[0] == pytest.approx(1.0, rel=1e-9)

    def test_metric_by_callable(self):
        series = sweep(
            poisson_base(),
            utilization_axis([0.5]),
            lambda s: s.fg_queue_length,
        )
        assert series.y[0] == pytest.approx(1.0, rel=1e-9)

    def test_unknown_metric_key_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            sweep(poisson_base(), utilization_axis([0.5]), "nope")

    def test_custom_axis(self):
        axis = SweepAxis(
            name="buffer",
            values=(1.0, 10.0),
            transform=lambda m, x: FgBgModel(
                arrival=m.arrival,
                service_rate=m.service_rate,
                bg_probability=m.bg_probability,
                bg_buffer=int(x),
            ),
        )
        base = poisson_base(p=0.9).at_utilization(0.5)
        series = sweep(base, axis, "comp_bg")
        assert series.y[1] > series.y[0]

    def test_label_defaults_to_axis_name(self):
        axis = utilization_axis([0.3])
        assert sweep(poisson_base(), axis, "qlen_fg").label == axis.name
        assert (
            sweep(poisson_base(), axis, "qlen_fg", label="mine").label == "mine"
        )

    def test_engine_is_used(self):
        engine = SweepEngine()
        sweep(poisson_base(), utilization_axis([0.2, 0.4]), "qlen_fg", engine=engine)
        assert engine.stats.solves == 2


class TestSweepMany:
    def test_one_series_per_probability(self):
        series = sweep_many(
            poisson_base(),
            utilization_axis([0.2, 0.4]),
            "qlen_fg",
            bg_probabilities=[0.1, 0.9],
        )
        assert [s.label for s in series] == ["p = 0.1", "p = 0.9"]
        assert all(s.x.shape == (2,) for s in series)

    def test_parallel_engine_identical_to_serial(self):
        args = (poisson_base(), utilization_axis([0.2, 0.4, 0.6]), "qlen_fg")
        serial = sweep_many(*args, bg_probabilities=[0.1, 0.6, 0.9])
        parallel = sweep_many(
            *args,
            bg_probabilities=[0.1, 0.6, 0.9],
            engine=SweepEngine(jobs=2),
        )
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.y, p.y)


class TestDeprecatedWrappers:
    @staticmethod
    def call_load_sweep():
        return load_sweep_series(  # noqa: RL010 -- exercising the deprecated wrapper on purpose
            PoissonProcess(0.01),
            utilizations=[0.2],
            bg_probabilities=[0.1],
            metric=lambda s: s.fg_queue_length,
        )

    def test_load_sweep_warns_exactly_once_per_process(self):
        with warnings.catch_warnings(record=True) as caught:
            # "always" would re-emit per call if the wrapper relied on the
            # default __warningregistry__ dedup; ours must not.
            warnings.simplefilter("always")
            self.call_load_sweep()
            self.call_load_sweep()
            self.call_load_sweep()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "sweep_many" in str(deprecations[0].message)

    def test_idle_wait_sweep_warns_exactly_once_per_process(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(2):
                idle_wait_sweep_series(  # noqa: RL010 -- exercising the deprecated wrapper on purpose
                    PoissonProcess(0.3 * MU),
                    idle_wait_multiples=[1.0],
                    bg_probabilities=[0.6],
                    metric=lambda s: s.bg_completion_rate,
                )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_warning_points_at_caller(self):
        """stacklevel must attribute the warning to *this* file, not sweeps.py."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self.call_load_sweep()
        (record,) = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert record.filename == __file__

    def test_second_call_survives_error_filter(self):
        """Under ``-W error::DeprecationWarning`` only the first call raises."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning):
                self.call_load_sweep()
            # Same wrapper again: silent, so sweep loops keep running.
            series = self.call_load_sweep()
        assert series
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            # The *other* wrapper still gets its own first warning.
            with pytest.raises(DeprecationWarning):
                idle_wait_sweep_series(  # noqa: RL010 -- exercising the deprecated wrapper on purpose
                    PoissonProcess(0.3 * MU),
                    idle_wait_multiples=[1.0],
                    bg_probabilities=[0.6],
                    metric=lambda s: s.bg_completion_rate,
                )

    def test_load_sweep_delegates_to_sweep_many(self):
        with pytest.warns(DeprecationWarning):
            old = load_sweep_series(  # noqa: RL010 -- exercising the deprecated wrapper on purpose
                PoissonProcess(0.01),
                utilizations=[0.2, 0.4],
                bg_probabilities=[0.1, 0.9],
                metric=lambda s: s.fg_queue_length,
            )
        new = sweep_many(
            poisson_base(),
            utilization_axis([0.2, 0.4]),
            "qlen_fg",
            bg_probabilities=[0.1, 0.9],
        )
        for o, n in zip(old, new):
            assert o.label == n.label
            np.testing.assert_array_equal(o.x, n.x)
            np.testing.assert_array_equal(o.y, n.y)

    def test_idle_wait_delegates_to_sweep_many(self):
        arrival = PoissonProcess(0.3 * MU)
        with pytest.warns(DeprecationWarning):
            old = idle_wait_sweep_series(  # noqa: RL010 -- exercising the deprecated wrapper on purpose
                arrival,
                idle_wait_multiples=[0.5, 2.0],
                bg_probabilities=[0.6],
                metric=lambda s: s.bg_completion_rate,
            )
        new = sweep_many(
            FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.0),
            idle_wait_axis([0.5, 2.0]),
            "comp_bg",
            bg_probabilities=[0.6],
        )
        np.testing.assert_array_equal(old[0].y, new[0].y)


class TestLoadSweep:
    def test_one_series_per_probability(self):
        with pytest.warns(DeprecationWarning):
            series = load_sweep_series(  # noqa: RL010 -- exercising the deprecated wrapper on purpose
                PoissonProcess(0.01),
                utilizations=[0.2, 0.4],
                bg_probabilities=[0.1, 0.9],
                metric=lambda s: s.fg_queue_length,
            )
        assert [s.label for s in series] == ["p = 0.1", "p = 0.9"]
        assert all(s.x.shape == (2,) for s in series)

    def test_metric_applied(self):
        with pytest.warns(DeprecationWarning):
            (series,) = load_sweep_series(  # noqa: RL010 -- exercising the deprecated wrapper on purpose
                PoissonProcess(0.01),
                utilizations=[0.5],
                bg_probabilities=[0.0],
                metric=lambda s: s.fg_queue_length,
            )
        # M/M/1 at rho = 0.5.
        assert series.y[0] == pytest.approx(1.0, rel=1e-9)

    def test_model_kwargs_forwarded(self):
        # One pytest.warns block: the wrapper only warns on the first call.
        with pytest.warns(DeprecationWarning):
            (small,) = load_sweep_series(  # noqa: RL010 -- exercising the deprecated wrapper on purpose
                PoissonProcess(0.01),
                utilizations=[0.5],
                bg_probabilities=[0.9],
                metric=lambda s: s.bg_completion_rate,
                bg_buffer=1,
            )
            (large,) = load_sweep_series(  # noqa: RL010 -- exercising the deprecated wrapper on purpose
                PoissonProcess(0.01),
                utilizations=[0.5],
                bg_probabilities=[0.9],
                metric=lambda s: s.bg_completion_rate,
                bg_buffer=10,
            )
        assert large.y[0] > small.y[0]

    def test_paper_probability_grid(self):
        assert BG_PROBABILITIES == (0.0, 0.1, 0.3, 0.6, 0.9)


class TestIdleWaitSweep:
    def test_x_axis_is_multiples(self):
        arrival = PoissonProcess(0.3 * SERVICE_RATE_PER_MS)
        with pytest.warns(DeprecationWarning):
            (series,) = idle_wait_sweep_series(  # noqa: RL010 -- exercising the deprecated wrapper on purpose
                arrival,
                idle_wait_multiples=[0.5, 1.0, 2.0],
                bg_probabilities=[0.6],
                metric=lambda s: s.bg_completion_rate,
            )
        np.testing.assert_array_equal(series.x, [0.5, 1.0, 2.0])
        assert np.all(np.diff(series.y) < 0)
