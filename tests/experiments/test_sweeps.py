"""Tests for the sweep helpers."""

import numpy as np
import pytest

from repro.experiments.sweeps import (
    BG_PROBABILITIES,
    idle_wait_sweep_series,
    load_sweep_series,
)
from repro.processes import PoissonProcess
from repro.workloads import SERVICE_RATE_PER_MS


class TestLoadSweep:
    def test_one_series_per_probability(self):
        series = load_sweep_series(
            PoissonProcess(0.01),
            utilizations=[0.2, 0.4],
            bg_probabilities=[0.1, 0.9],
            metric=lambda s: s.fg_queue_length,
        )
        assert [s.label for s in series] == ["p = 0.1", "p = 0.9"]
        assert all(s.x.shape == (2,) for s in series)

    def test_metric_applied(self):
        (series,) = load_sweep_series(
            PoissonProcess(0.01),
            utilizations=[0.5],
            bg_probabilities=[0.0],
            metric=lambda s: s.fg_queue_length,
        )
        # M/M/1 at rho = 0.5.
        assert series.y[0] == pytest.approx(1.0, rel=1e-9)

    def test_model_kwargs_forwarded(self):
        (small,) = load_sweep_series(
            PoissonProcess(0.01),
            utilizations=[0.5],
            bg_probabilities=[0.9],
            metric=lambda s: s.bg_completion_rate,
            bg_buffer=1,
        )
        (large,) = load_sweep_series(
            PoissonProcess(0.01),
            utilizations=[0.5],
            bg_probabilities=[0.9],
            metric=lambda s: s.bg_completion_rate,
            bg_buffer=10,
        )
        assert large.y[0] > small.y[0]

    def test_paper_probability_grid(self):
        assert BG_PROBABILITIES == (0.0, 0.1, 0.3, 0.6, 0.9)


class TestIdleWaitSweep:
    def test_x_axis_is_multiples(self):
        arrival = PoissonProcess(0.3 * SERVICE_RATE_PER_MS)
        (series,) = idle_wait_sweep_series(
            arrival,
            idle_wait_multiples=[0.5, 1.0, 2.0],
            bg_probabilities=[0.6],
            metric=lambda s: s.bg_completion_rate,
        )
        np.testing.assert_array_equal(series.x, [0.5, 1.0, 2.0])
        assert np.all(np.diff(series.y) < 0)
