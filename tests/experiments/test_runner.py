"""Tests for the CLI runner."""

import argparse

import pytest

from repro.engine import EngineConfig
from repro.experiments.runner import build_config, execute_figure, main


class TestRunner:
    def test_runs_single_figure(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "E-mail" in out

    def test_fast_flag_for_fig1(self, capsys):
        assert main(["fig1", "--fast"]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_unknown_figure_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        assert "unknown figure" in capsys.readouterr().err

    def test_multiple_figures(self, capsys):
        assert main(["fig2", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig9" in out


class TestEngineFlags:
    def test_jobs_output_identical_to_serial(self, capsys):
        assert main(["fig9"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig9", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_flag_in_memory(self, capsys):
        assert main(["fig9", "fig9", "--cache"]) == 0
        assert "fig9" in capsys.readouterr().out

    def test_cache_flag_with_directory(self, tmp_path, capsys):
        cache_dir = tmp_path / "solves"
        assert main(["fig9", "--cache", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert any(cache_dir.iterdir())
        # A second run is served from disk and renders identically.
        assert main(["fig9", "--cache", str(cache_dir)]) == 0
        assert capsys.readouterr().out == first

    def test_warm_start_output_identical(self, capsys):
        assert main(["fig9"]) == 0
        cold = capsys.readouterr().out
        assert main(["fig9", "--warm-start"]) == 0
        assert capsys.readouterr().out == cold

    def test_invalid_jobs_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig9", "--jobs", "0"])
        assert "--jobs" in capsys.readouterr().err

    def test_engine_flags_ignored_for_table_figures(self, capsys):
        # fig2 takes no engine; the flags must not break it.
        assert main(["fig2", "--jobs", "2", "--cache"]) == 0
        assert "fig2" in capsys.readouterr().out


def parsed(*flags) -> argparse.Namespace:
    """A parsed namespace with the runner's engine-flag defaults."""
    defaults = dict(
        jobs=1,
        cache=None,
        warm_start=False,
        batched=False,
        on_error="raise",
        escalate=False,
    )
    namespace = argparse.Namespace(**defaults)
    for key, value in flags:
        setattr(namespace, key, value)
    return namespace


class TestBuildConfig:
    def test_all_defaults_is_none(self):
        # None keeps figures on the historical no-engine path.
        assert build_config(parsed()) is None

    def test_any_flag_builds_a_config(self):
        config = build_config(parsed(("jobs", 2)))
        assert config == EngineConfig(jobs=2)

    def test_memory_cache_spelling(self):
        config = build_config(parsed(("cache", "")))
        assert config.cache_memory and config.cache_dir is None

    def test_disk_cache_spelling(self, tmp_path):
        config = build_config(parsed(("cache", str(tmp_path))))
        assert config.cache_dir == str(tmp_path) and not config.cache_memory


class TestExecuteFigure:
    def test_matches_the_cli_output(self, capsys):
        rendered = execute_figure("fig2")
        assert main(["fig2"]) == 0
        assert capsys.readouterr().out == rendered + "\n\n"

    def test_engine_reaches_sweep_figures(self):
        config = EngineConfig(cache_memory=True)
        engine = config.build_engine()
        rendered = execute_figure("fig9", engine=engine)
        assert rendered == execute_figure("fig9")
        assert engine.stats.solves > 0


class TestViaJobs:
    def test_output_identical_to_blocking_run(self, tmp_path, capsys):
        assert main(["fig2"]) == 0
        blocking = capsys.readouterr().out
        assert main(["fig2", "--via-jobs", str(tmp_path / "q")]) == 0
        assert capsys.readouterr().out == blocking

    def test_completed_jobs_are_replayed(self, tmp_path, capsys):
        queue = str(tmp_path / "q")
        assert main(["fig2", "--via-jobs", queue]) == 0
        first = capsys.readouterr().out
        assert main(["fig2", "--via-jobs", queue]) == 0
        assert capsys.readouterr().out == first
        # The rerun reused the COMPLETED job instead of submitting a new one.
        from repro.jobs import FileJobRepository

        assert len(FileJobRepository(queue).list_jobs()) == 1

    def test_via_jobs_rejects_resume(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["fig2", "--via-jobs", str(tmp_path), "--resume"])
        assert "--via-jobs" in capsys.readouterr().err
