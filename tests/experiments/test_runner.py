"""Tests for the CLI runner."""

import pytest

from repro.experiments.runner import main


class TestRunner:
    def test_runs_single_figure(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "E-mail" in out

    def test_fast_flag_for_fig1(self, capsys):
        assert main(["fig1", "--fast"]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_unknown_figure_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        assert "unknown figure" in capsys.readouterr().err

    def test_multiple_figures(self, capsys):
        assert main(["fig2", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig9" in out
