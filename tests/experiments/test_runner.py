"""Tests for the CLI runner."""

import pytest

from repro.experiments.runner import main


class TestRunner:
    def test_runs_single_figure(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "E-mail" in out

    def test_fast_flag_for_fig1(self, capsys):
        assert main(["fig1", "--fast"]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_unknown_figure_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        assert "unknown figure" in capsys.readouterr().err

    def test_multiple_figures(self, capsys):
        assert main(["fig2", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig9" in out


class TestEngineFlags:
    def test_jobs_output_identical_to_serial(self, capsys):
        assert main(["fig9"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig9", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_flag_in_memory(self, capsys):
        assert main(["fig9", "fig9", "--cache"]) == 0
        assert "fig9" in capsys.readouterr().out

    def test_cache_flag_with_directory(self, tmp_path, capsys):
        cache_dir = tmp_path / "solves"
        assert main(["fig9", "--cache", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert any(cache_dir.iterdir())
        # A second run is served from disk and renders identically.
        assert main(["fig9", "--cache", str(cache_dir)]) == 0
        assert capsys.readouterr().out == first

    def test_warm_start_output_identical(self, capsys):
        assert main(["fig9"]) == 0
        cold = capsys.readouterr().out
        assert main(["fig9", "--warm-start"]) == 0
        assert capsys.readouterr().out == cold

    def test_invalid_jobs_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig9", "--jobs", "0"])
        assert "--jobs" in capsys.readouterr().err

    def test_engine_flags_ignored_for_table_figures(self, capsys):
        # fig2 takes no engine; the flags must not break it.
        assert main(["fig2", "--jobs", "2", "--cache"]) == 0
        assert "fig2" in capsys.readouterr().out
