"""End-to-end validation: analytic model vs discrete-event simulation.

The simulator implements the system independently of the chain (event
calendar vs generator blocks), so agreement here validates both the state
space and every metric formula.
"""

import numpy as np
import pytest

from repro.core import BgServiceMode, FgBgModel
from repro.processes import PoissonProcess, fit_ipp, fit_mmpp2
from repro.sim import FgBgSimulator
from repro.workloads import SERVICE_RATE_PER_MS

MU = SERVICE_RATE_PER_MS

METRICS = (
    "fg_queue_length",
    "bg_queue_length",
    "fg_delayed_fraction",
    "fg_arrival_delayed_fraction",
    "bg_completion_rate",
    "fg_server_share",
    "bg_server_share",
    "fg_response_time",
)


def compare(model: FgBgModel, horizon: float, seed: int, rel: float, abs_tol: float = 0.01):
    analytic = model.solve()
    simulated = FgBgSimulator(model).run(horizon, np.random.default_rng(seed))
    for name in METRICS:
        a = getattr(analytic, name)
        s = getattr(simulated, name)
        assert s == pytest.approx(a, rel=rel, abs=abs_tol), (
            f"{name}: analytic {a}, simulated {s}"
        )


class TestPoissonArrivals:
    @pytest.mark.parametrize("p", [0.1, 0.6, 1.0])
    def test_moderate_load(self, p):
        model = FgBgModel(
            arrival=PoissonProcess(0.4 * MU), service_rate=MU, bg_probability=p
        )
        compare(model, horizon=1_500_000.0, seed=11, rel=0.06)

    def test_high_load(self):
        model = FgBgModel(
            arrival=PoissonProcess(0.8 * MU), service_rate=MU, bg_probability=0.3
        )
        compare(model, horizon=2_500_000.0, seed=13, rel=0.08, abs_tol=0.02)

    def test_small_buffer(self):
        model = FgBgModel(
            arrival=PoissonProcess(0.5 * MU),
            service_rate=MU,
            bg_probability=0.9,
            bg_buffer=1,
        )
        compare(model, horizon=1_500_000.0, seed=17, rel=0.06)

    def test_rewait_mode(self):
        model = FgBgModel(
            arrival=PoissonProcess(0.4 * MU),
            service_rate=MU,
            bg_probability=0.6,
            bg_mode=BgServiceMode.REWAIT,
        )
        compare(model, horizon=1_500_000.0, seed=19, rel=0.06)

    def test_long_idle_wait(self):
        model = FgBgModel(
            arrival=PoissonProcess(0.3 * MU),
            service_rate=MU,
            bg_probability=0.6,
            idle_wait_rate=MU / 3.0,
        )
        compare(model, horizon=1_500_000.0, seed=23, rel=0.06)


class TestCorrelatedArrivals:
    def test_mmpp_moderate_decay(self):
        arrival = fit_mmpp2(rate=0.4 * MU, scv=2.0, decay=0.9)
        model = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.6)
        compare(model, horizon=4_000_000.0, seed=29, rel=0.12, abs_tol=0.02)

    def test_ipp_renewal_arrivals(self):
        arrival = fit_ipp(mean=1.0 / (0.4 * MU), scv=3.0)
        model = FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.3)
        compare(model, horizon=4_000_000.0, seed=31, rel=0.12, abs_tol=0.02)
