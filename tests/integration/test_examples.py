"""Smoke-tests: the shipped examples must run and print their conclusions."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,  # noqa: RL003 -- subprocess API, seconds by contract
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Load sweep" in out
        assert "bg_completion_rate" in out

    def test_write_verification(self):
        out = run_example("write_verification.py")
        assert "max sustainable load" in out
        assert "E-mail" in out

    def test_scrubbing_policy(self):
        out = run_example("scrubbing_policy.py")
        assert "Recommendation" in out

    def test_validate_model_fast(self):
        out = run_example("validate_model.py", "--fast")
        assert "analytic" in out
        assert "rel.dev" in out
