"""Report renderer tests: text, GitHub annotations, SARIF 2.1.0."""

from __future__ import annotations

import json

import pytest

from tools.reprolint.core import Violation
from tools.reprolint.formats import (
    FORMATS,
    render_github,
    render_report,
    render_sarif,
    sarif_log,
)
from tools.reprolint.rules import RULE_SUMMARIES

VIOLATIONS = [
    Violation("src/repro/a.py", 10, 4, "RL003", "time-like name 'timeout'"),
    Violation("src/repro/b.py", 2, 0, "RL007", "no contract coverage"),
]

#: Structural subset of the SARIF 2.1.0 schema covering everything the
#: GitHub code-scanning ingester requires of a log we emit.  The full
#: OASIS schema is several thousand lines; this keeps the load-bearing
#: constraints (required properties, types, 1-based region columns).
SARIF_21_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def test_github_renderer_emits_workflow_commands():
    out = render_github(VIOLATIONS)
    lines = out.splitlines()
    assert lines[0].startswith("::error file=src/repro/a.py,line=10,col=5,")
    assert "title=reprolint RL003" in lines[0]
    assert lines[-1] == "reprolint: 2 violations"


def test_sarif_log_structure():
    log = sarif_log(VIOLATIONS)
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "reprolint"
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(RULE_SUMMARIES)
    assert len(run["results"]) == 2
    first = run["results"][0]
    assert first["ruleId"] == "RL003"
    region = first["locations"][0]["physicalLocation"]["region"]
    # SARIF columns are 1-based; Violation.col is 0-based.
    assert region == {"startLine": 10, "startColumn": 5}
    # ruleIndex must point into the rules array.
    assert rule_ids[first["ruleIndex"]] == "RL003"


def test_sarif_round_trips_through_json():
    log = json.loads(render_sarif(VIOLATIONS))
    assert log == sarif_log(VIOLATIONS)


def test_sarif_validates_against_schema_subset():
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(sarif_log(VIOLATIONS), SARIF_21_SUBSET_SCHEMA)
    jsonschema.validate(sarif_log([]), SARIF_21_SUBSET_SCHEMA)


def test_render_report_dispatch_and_unknown_format():
    assert set(FORMATS) == {"text", "github", "sarif"}
    assert "RL003" in render_report(VIOLATIONS, "text")
    with pytest.raises(ValueError, match="unknown format"):
        render_report(VIOLATIONS, "xml")


def test_sarif_rules_carry_help_from_the_doc_registry():
    # --explain and the code-scanning UI must tell the same story: every
    # documented rule's SARIF descriptor embeds the registry's help text.
    from tools.reprolint.docs import RULE_DOCS, help_text

    log = sarif_log(VIOLATIONS)
    (run,) = log["runs"]
    by_id = {rule["id"]: rule for rule in run["tool"]["driver"]["rules"]}
    assert set(RULE_DOCS) == set(by_id), "every rule is documented"
    for code, rule in by_id.items():
        assert rule["help"]["text"] == help_text(code)
    assert "d0 + d1" in by_id["RL017"]["help"]["text"]
