"""Run mypy on the analytic spine when it is installed (CI always is).

The container used for day-to-day development may not ship mypy; the
typecheck then runs only in CI (see .github/workflows/ci.yml).  This
test keeps the two in sync: wherever mypy *is* available, the same
configuration that gates CI must pass.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_mypy_passes_on_the_analytic_spine():
    if shutil.which("mypy") is None:
        pytest.skip("mypy not installed; the CI typecheck job covers this")
    result = subprocess.run(
        ["mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,  # noqa: RL003 -- subprocess API, seconds by contract
    )
    assert result.returncode == 0, result.stdout + result.stderr
