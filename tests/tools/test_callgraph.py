"""Call-graph construction: resolution shapes, SCCs, Project wiring."""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint.callgraph import CallGraph, build_call_graph
from tools.reprolint.effects import extract_defs
from tools.reprolint.project import Project


def write_tree(tmp_path: Path, files: dict[str, str]) -> list[Path]:
    paths = []
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        paths.append(target)
    return paths


def defs_of(source: str, module: str = "m"):
    return {
        (module, qualname): record
        for qualname, record in extract_defs(ast.parse(source)).items()
    }


def same_module_resolve(defs):
    def resolve(module, qualname, call):
        if call["target"][0] == "name":
            node = (module, call["target"][1])
            return node if node in defs else None
        return None

    return resolve


# ---------------------------------------------------------------------------
# Pure graph structure
# ---------------------------------------------------------------------------


def test_build_call_graph_resolves_simple_edges():
    defs = defs_of(
        "def low(x):\n    return x\n"
        "def mid(x):\n    return low(x)\n"
        "def top(x):\n    return mid(x)\n"
    )
    graph = build_call_graph(defs, same_module_resolve(defs))
    assert graph.callee_nodes(("m", "top")) == [("m", "mid")]
    assert graph.callee_nodes(("m", "mid")) == [("m", "low")]
    assert graph.callee_nodes(("m", "low")) == []


def test_edges_carry_call_records_with_bindings():
    defs = defs_of(
        "def low(a, b=None):\n    return a\n"
        "def top(x, y):\n    return low(x, b=y)\n"
    )
    graph = build_call_graph(defs, same_module_resolve(defs))
    ((callee, call),) = graph.callees(("m", "top"))
    assert callee == ("m", "low")
    assert call["pos_names"] == ["x"]
    assert call["kw_names"] == {"b": "y"}


def test_unresolvable_calls_do_not_become_edges():
    defs = defs_of("def top(x):\n    return external(x)\n")
    graph = build_call_graph(defs, same_module_resolve(defs))
    assert graph.callee_nodes(("m", "top")) == []


def test_sccs_emit_callees_first():
    defs = defs_of(
        "def low(x):\n    return x\n"
        "def mid(x):\n    return low(x)\n"
        "def top(x):\n    return mid(x)\n"
    )
    graph = build_call_graph(defs, same_module_resolve(defs))
    order = graph.sccs()
    assert order.index([("m", "low")]) < order.index([("m", "mid")])
    assert order.index([("m", "mid")]) < order.index([("m", "top")])


def test_sccs_group_mutual_recursion_into_one_component():
    defs = defs_of(
        "def even(n):\n    return True if n == 0 else odd(n - 1)\n"
        "def odd(n):\n    return False if n == 0 else even(n - 1)\n"
        "def entry(n):\n    return even(n)\n"
    )
    graph = build_call_graph(defs, same_module_resolve(defs))
    components = graph.sccs()
    assert [("m", "even"), ("m", "odd")] in components
    cycle_at = components.index([("m", "even"), ("m", "odd")])
    assert cycle_at < components.index([("m", "entry")])


def test_self_recursion_is_its_own_component():
    defs = defs_of("def loop(n):\n    return loop(n - 1) if n else 0\n")
    graph = build_call_graph(defs, same_module_resolve(defs))
    assert graph.sccs() == [[("m", "loop")]]


def test_deep_chain_does_not_hit_recursion_limit():
    graph = CallGraph()
    for i in range(5000):
        graph.add_edge(("m", f"f{i}"), ("m", f"f{i + 1}"), {"line": 1})
    components = graph.sccs()
    assert len(components) == 5001
    assert components[0] == [("m", "f5000")]


# ---------------------------------------------------------------------------
# Project wiring: imports, re-exports, methods, decorators
# ---------------------------------------------------------------------------


def project_graph(tmp_path, files):
    write_tree(tmp_path, files)
    roots = sorted({Path(rel).parts[0] for rel in files})
    project = Project(
        [tmp_path / r for r in roots], root=tmp_path, contract_packages=()
    )
    project.analyze()
    return project.call_graph()


def test_project_edge_through_plain_import(tmp_path):
    graph = project_graph(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/callee.py": "def serve(x):\n    return x\n",
            "pkg/caller.py": (
                "from pkg.callee import serve\n"
                "def go(x):\n    return serve(x)\n"
            ),
        },
    )
    assert graph.callee_nodes(("pkg.caller", "go")) == [("pkg.callee", "serve")]


def test_project_edge_through_reexport_chain(tmp_path):
    graph = project_graph(
        tmp_path,
        {
            "pkg/__init__.py": "from .impl import serve\n__all__ = ['serve']\n",
            "pkg/impl.py": "def serve(x):\n    return x\n",
            "app.py": (
                "from pkg import serve\n"
                "def go(x):\n    return serve(x)\n"
            ),
        },
    )
    assert graph.callee_nodes(("app", "go")) == [("pkg.impl", "serve")]


def test_project_edge_through_module_attribute(tmp_path):
    graph = project_graph(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/callee.py": "def serve(x):\n    return x\n",
            "pkg/caller.py": (
                "from pkg import callee\n"
                "def go(x):\n    return callee.serve(x)\n"
            ),
        },
    )
    assert graph.callee_nodes(("pkg.caller", "go")) == [("pkg.callee", "serve")]


def test_project_edge_for_self_method_calls(tmp_path):
    graph = project_graph(
        tmp_path,
        {
            "mod.py": (
                "class Engine:\n"
                "    def solve(self, x):\n"
                "        return self._step(x)\n"
                "    def _step(self, x):\n"
                "        return x\n"
            ),
        },
    )
    assert graph.callee_nodes(("mod", "Engine.solve")) == [
        ("mod", "Engine._step")
    ]


def test_project_edge_to_class_constructor(tmp_path):
    graph = project_graph(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/model.py": (
                "class Model:\n"
                "    def __init__(self, x):\n"
                "        self.x = x\n"
            ),
            "pkg/make.py": (
                "from pkg.model import Model\n"
                "def build(x):\n    return Model(x)\n"
            ),
        },
    )
    assert graph.callee_nodes(("pkg.make", "build")) == [
        ("pkg.model", "Model.__init__")
    ]


def test_project_decorated_function_is_a_node_with_edges(tmp_path):
    graph = project_graph(
        tmp_path,
        {
            "mod.py": (
                "import functools\n"
                "def helper(x):\n    return x\n"
                "@functools.lru_cache\n"
                "def cached(x):\n    return helper(x)\n"
            ),
        },
    )
    assert graph.callee_nodes(("mod", "cached")) == [("mod", "helper")]


def test_project_cross_module_cycle_is_one_scc(tmp_path):
    graph = project_graph(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/a.py": (
                "from pkg.b import pong\n"
                "def ping(n):\n    return pong(n - 1) if n else 0\n"
            ),
            "pkg/b.py": (
                "from pkg.a import ping\n"
                "def pong(n):\n    return ping(n - 1) if n else 0\n"
            ),
        },
    )
    assert [("pkg.a", "ping"), ("pkg.b", "pong")] in graph.sccs()
