"""Project-level analyzer tests: symbol table, cache, cross-file rules."""

from __future__ import annotations

import time
from pathlib import Path

from tools.reprolint.core import lint_source
from tools.reprolint.project import Project, module_name_for

REPO_ROOT = Path(__file__).resolve().parents[2]


def codes(violations):
    return [v.code for v in violations]


def write_tree(tmp_path: Path, files: dict[str, str]) -> list[Path]:
    paths = []
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        paths.append(target)
    return paths


# ---------------------------------------------------------------------------
# Module naming and symbol resolution
# ---------------------------------------------------------------------------


def test_module_name_strips_src_prefix():
    root = REPO_ROOT
    assert (
        module_name_for(root / "src" / "repro" / "qbd" / "rmatrix.py", root)
        == "repro.qbd.rmatrix"
    )
    assert (
        module_name_for(root / "src" / "repro" / "qbd" / "__init__.py", root)
        == "repro.qbd"
    )


def test_resolve_follows_reexport_chain(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "from pkg.impl import solve\n__all__ = ['solve']\n",
            "pkg/impl.py": "def solve(x):\n    return x\n",
        },
    )
    project = Project([tmp_path / "pkg"], root=tmp_path)
    modules = {a.module: a for a in project.analyze().values()}
    assert project.resolve("pkg", "solve", modules) == (
        "function",
        "pkg.impl",
        "solve",
    )


def test_resolve_relative_import(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "from .impl import solve\n__all__ = ['solve']\n",
            "pkg/impl.py": "def solve(x):\n    return x\n",
        },
    )
    project = Project([tmp_path / "pkg"], root=tmp_path)
    modules = {a.module: a for a in project.analyze().values()}
    assert project.resolve("pkg", "solve", modules) == (
        "function",
        "pkg.impl",
        "solve",
    )


# ---------------------------------------------------------------------------
# RL007: contract coverage
# ---------------------------------------------------------------------------


def test_rl007_flags_uncovered_reexported_entry_point(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "from .impl import solve\n__all__ = ['solve']\n",
            "pkg/impl.py": "def solve(x):\n    return x\n",
        },
    )
    project = Project(
        [tmp_path / "pkg"], root=tmp_path, contract_packages=("pkg",)
    )
    violations = project.lint()
    assert codes(violations) == ["RL007"]
    assert violations[0].path.endswith("impl.py")


def test_rl007_base_class_evidence_is_inherited(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/__init__.py": (
                "from .impl import Checked, Derived\n"
                "__all__ = ['Checked', 'Derived']\n"
            ),
            "pkg/impl.py": (
                "class Checked:\n"
                "    def __init__(self, x):\n"
                "        if x is None:\n"
                "            raise ValueError('x')\n"
                "        self.x = x\n"
                "\n"
                "class Derived(Checked):\n"
                "    pass\n"
            ),
        },
    )
    project = Project(
        [tmp_path / "pkg"], root=tmp_path, contract_packages=("pkg",)
    )
    assert project.lint() == []


def test_rl007_waivable_with_reasoned_noqa(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "from .impl import solve\n__all__ = ['solve']\n",
            "pkg/impl.py": (
                "def solve(x):  # noqa: RL007 -- pure accessor, nothing to check\n"
                "    return x\n"
            ),
        },
    )
    project = Project(
        [tmp_path / "pkg"], root=tmp_path, contract_packages=("pkg",)
    )
    assert project.lint() == []


# ---------------------------------------------------------------------------
# RL008: cross-module unit flow
# ---------------------------------------------------------------------------


def test_rl008_fires_across_modules(tmp_path):
    write_tree(
        tmp_path,
        {
            "unitpkg/callee.py": "def serve(slice_ms):\n    return slice_ms\n",
            "unitpkg/caller.py": (
                "from unitpkg.callee import serve\n"
                "def go(quantum_sec):  # noqa: RL003 -- unit bug under test\n"
                "    return serve(quantum_sec)\n"
            ),
        },
    )
    project = Project([tmp_path / "unitpkg"], root=tmp_path)
    violations = project.lint()
    assert codes(violations) == ["RL008"]
    assert violations[0].path.endswith("caller.py")


def test_rl008_module_attribute_call(tmp_path):
    write_tree(
        tmp_path,
        {
            "unitpkg/callee.py": "def serve(slice_ms):\n    return slice_ms\n",
            "unitpkg/caller.py": (
                "from unitpkg import callee\n"
                "def go(budget_ms):\n"
                "    return callee.serve(budget_ms)\n"
            ),
        },
    )
    project = Project([tmp_path / "unitpkg"], root=tmp_path)
    assert project.lint() == []


def test_rl008_quiet_without_unit_evidence_on_either_side(tmp_path):
    write_tree(
        tmp_path,
        {
            "unitpkg/callee.py": "def serve(count):\n    return count\n",
            "unitpkg/caller.py": (
                "from unitpkg.callee import serve\n"
                "def go(budget_ms):\n"
                "    return serve(budget_ms)\n"
            ),
        },
    )
    project = Project([tmp_path / "unitpkg"], root=tmp_path)
    assert project.lint() == []


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


def test_cache_cold_then_warm(tmp_path):
    files = write_tree(
        tmp_path,
        {f"mod{i}.py": f"def f{i}(x):\n    return x\n" for i in range(5)},
    )
    cache = tmp_path / "cache.json"
    cold = Project(files, root=tmp_path, cache_path=cache)
    cold.analyze()
    assert cold.stats == {"analyzed": 5, "cache_hits": 0}
    warm = Project(files, root=tmp_path, cache_path=cache)
    warm.analyze()
    assert warm.stats == {"analyzed": 0, "cache_hits": 5}


def test_cache_invalidated_by_content_change(tmp_path):
    files = write_tree(tmp_path, {"mod.py": "def f(x):\n    return x\n"})
    cache = tmp_path / "cache.json"
    Project(files, root=tmp_path, cache_path=cache).analyze()
    files[0].write_text("def f(timeout):\n    return timeout\n", encoding="utf-8")
    project = Project(files, root=tmp_path, cache_path=cache)
    violations = project.lint()
    assert project.stats["analyzed"] == 1
    assert codes(violations) == ["RL003"]


def test_cache_survives_touch_via_content_hash(tmp_path):
    files = write_tree(tmp_path, {"mod.py": "def f(x):\n    return x\n"})
    cache = tmp_path / "cache.json"
    Project(files, root=tmp_path, cache_path=cache).analyze()
    stat = files[0].stat()
    import os

    os.utime(files[0], ns=(stat.st_atime_ns, stat.st_mtime_ns + 10_000_000))
    warm = Project(files, root=tmp_path, cache_path=cache)
    warm.analyze()
    assert warm.stats == {"analyzed": 0, "cache_hits": 1}


def test_parallel_jobs_match_serial(tmp_path):
    files = write_tree(
        tmp_path,
        {
            f"mod{i}.py": f"def f{i}(timeout):\n    return timeout\n"
            for i in range(8)
        },
    )
    serial = Project(files, root=tmp_path).lint()
    parallel = Project(files, root=tmp_path, jobs=4).lint()
    assert serial == parallel
    assert len(serial) == 8


def test_engine_version_bump_invalidates_whole_cache(tmp_path, monkeypatch):
    # Cached summaries carry analysis-engine state (symbols, effects,
    # shape facts); a new engine must never trust an old cache.
    files = write_tree(
        tmp_path,
        {f"mod{i}.py": f"def f{i}(x):\n    return x\n" for i in range(3)},
    )
    cache = tmp_path / "cache.json"
    Project(files, root=tmp_path, cache_path=cache).analyze()
    monkeypatch.setattr(
        "tools.reprolint.project.ENGINE_VERSION", "reprolint-99.0-test"
    )
    bumped = Project(files, root=tmp_path, cache_path=cache)
    bumped.analyze()
    assert bumped.stats == {"analyzed": 3, "cache_hits": 0}
    # And the rewritten cache is warm again under the new version.
    rewarm = Project(files, root=tmp_path, cache_path=cache)
    rewarm.analyze()
    assert rewarm.stats == {"analyzed": 0, "cache_hits": 3}


_SHAPE_FLOW_TREE = {
    "pkg/__init__.py": "",
    "pkg/solver.py": (
        "def phase_pi(q):\n"
        "    return q\n"
    ),
    "pkg/caller.py": (
        "from pkg.solver import phase_pi\n"
        "def use(d0):\n"
        "    return phase_pi(d0)\n"
    ),
}

_SINKFUL_SOLVER = (
    "def phase_pi(q):\n"
    "    return stationary_distribution(q)\n"
)


def _edited_callee_updates_caller_verdict(tmp_path, jobs):
    # The project verdict depends on *other* files' summaries: editing
    # only the callee must flip the violation reported at the caller,
    # while the caller itself is still served from the cache.
    paths = write_tree(tmp_path, _SHAPE_FLOW_TREE)
    cache = tmp_path / "cache.json"
    clean = Project(paths, root=tmp_path, cache_path=cache, jobs=jobs)
    assert [v for v in clean.lint() if v.code == "RL017"] == []
    (tmp_path / "pkg" / "solver.py").write_text(
        _SINKFUL_SOLVER, encoding="utf-8"
    )
    dirty = Project(paths, root=tmp_path, cache_path=cache, jobs=jobs)
    violations = [v for v in dirty.lint() if v.code == "RL017"]
    assert dirty.stats == {"analyzed": 1, "cache_hits": 2}
    assert violations and violations[0].path.endswith("caller.py")


def test_edited_callee_updates_cached_caller_verdict(tmp_path):
    _edited_callee_updates_caller_verdict(tmp_path, jobs=1)


def test_edited_callee_updates_cached_caller_verdict_parallel(tmp_path):
    _edited_callee_updates_caller_verdict(tmp_path, jobs=4)


# ---------------------------------------------------------------------------
# RL007: one-hop callee evidence through the call graph
# ---------------------------------------------------------------------------


def test_rl007_accepts_strong_evidence_one_call_away(tmp_path):
    # solve() delegates its checking to prepare(), whose own body calls a
    # validate_* helper; the call graph carries that evidence one hop up.
    write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "from .impl import solve\n__all__ = ['solve']\n",
            "pkg/impl.py": (
                "from .inner import prepare\n"
                "def solve(x):\n"
                "    prepare(x)\n"
                "    return x\n"
            ),
            "pkg/inner.py": (
                "def prepare(x):\n"
                "    validate_shape(x)\n"
                "    return x\n"
                "def validate_shape(x):\n"
                "    if x is None:\n"
                "        raise ValueError('x')\n"
            ),
        },
    )
    project = Project(
        [tmp_path / "pkg"], root=tmp_path, contract_packages=("pkg",)
    )
    assert project.lint() == []


def test_rl007_one_hop_needs_strong_evidence_not_just_raising(tmp_path):
    # prepare() raises on its own, but raising alone is weak evidence; it
    # must not launder the uncovered entry point through the call graph.
    write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "from .impl import solve\n__all__ = ['solve']\n",
            "pkg/impl.py": (
                "from .inner import prepare\n"
                "def solve(x):\n"
                "    prepare(x)\n"
                "    return x\n"
            ),
            "pkg/inner.py": (
                "def prepare(x):\n"
                "    if x is None:\n"
                "        raise ValueError('x')\n"
                "    return x\n"
            ),
        },
    )
    project = Project(
        [tmp_path / "pkg"], root=tmp_path, contract_packages=("pkg",)
    )
    assert codes(project.lint()) == ["RL007"]


# ---------------------------------------------------------------------------
# RL011: solver purity through effect summaries
# ---------------------------------------------------------------------------


def test_rl011_interprocedural_mutation_across_modules(tmp_path):
    write_tree(
        tmp_path,
        {
            "solverpkg/__init__.py": (
                "from .impl import scrub\n__all__ = ['scrub']\n"
            ),
            "solverpkg/impl.py": (
                "from .ops import wipe\n"
                "def scrub(matrix):\n"
                "    wipe(matrix)\n"
                "    return matrix\n"
            ),
            "solverpkg/ops.py": (
                "def wipe(m):\n    m[0, 0] = 0.0\n    return m\n"
            ),
        },
    )
    project = Project(
        [tmp_path / "solverpkg"],
        root=tmp_path,
        contract_packages=(),
        purity_packages=("solverpkg",),
    )
    violations = project.lint()
    assert codes(violations) == ["RL011"]
    assert "wipe" in violations[0].message
    assert violations[0].path.endswith("impl.py")


def test_rl011_copying_entry_point_is_pure(tmp_path):
    write_tree(
        tmp_path,
        {
            "solverpkg/__init__.py": (
                "from .impl import scrub\n__all__ = ['scrub']\n"
            ),
            "solverpkg/impl.py": (
                "import numpy as np\n"
                "from .ops import wipe\n"
                "def scrub(matrix):\n"
                "    result = np.array(matrix, dtype=float)\n"
                "    wipe(result)\n"
                "    return result\n"
            ),
            "solverpkg/ops.py": (
                "def wipe(m):\n    m[0, 0] = 0.0\n    return m\n"
            ),
        },
    )
    project = Project(
        [tmp_path / "solverpkg"],
        root=tmp_path,
        contract_packages=(),
        purity_packages=("solverpkg",),
    )
    assert project.lint() == []


def test_rl011_waivable_with_reasoned_noqa(tmp_path):
    write_tree(
        tmp_path,
        {
            "solverpkg/__init__.py": (
                "from .impl import scale\n__all__ = ['scale']\n"
            ),
            "solverpkg/impl.py": (
                "def scale(matrix, factor):  # noqa: RL011 -- documented in-place API\n"
                "    matrix *= factor\n"
                "    return matrix\n"
            ),
        },
    )
    project = Project(
        [tmp_path / "solverpkg"],
        root=tmp_path,
        contract_packages=(),
        purity_packages=("solverpkg",),
    )
    assert project.lint() == []


def test_rl011_injected_mutation_in_real_qbd_package(tmp_path):
    # Copy the real repro.qbd package, then inject a helper that scrubs a
    # caller-owned block in place; the entry-point summary must pick the
    # mutation up through the call graph.
    qbd_src = REPO_ROOT / "src" / "repro" / "qbd"
    pkg = tmp_path / "repro" / "qbd"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("", encoding="utf-8")
    for module in qbd_src.glob("*.py"):
        (pkg / module.name).write_text(
            module.read_text(encoding="utf-8"), encoding="utf-8"
        )
    clean = Project(
        [tmp_path / "repro"], root=tmp_path, contract_packages=()
    )
    assert [v for v in clean.lint() if v.code == "RL011"] == []

    rmatrix = pkg / "rmatrix.py"
    source = rmatrix.read_text(encoding="utf-8")
    source += (
        "\n\ndef _scrub(m):\n"
        "    m[0, 0] = 0.0\n"
        "\n\n_orig_r_matrix = r_matrix\n"
        "\n\ndef r_matrix(a0, a1, a2, **kwargs):\n"
        "    _scrub(a1)\n"
        "    return _orig_r_matrix(a0, a1, a2, **kwargs)\n"
    )
    rmatrix.write_text(source, encoding="utf-8")
    mutated = Project(
        [tmp_path / "repro"], root=tmp_path, contract_packages=()
    )
    rl011 = [v for v in mutated.lint() if v.code == "RL011"]
    assert len(rl011) == 1
    assert "_scrub" in rl011[0].message
    assert "'a1'" in rl011[0].message


# ---------------------------------------------------------------------------
# Acceptance: an injected mutable-array certificate is caught
# ---------------------------------------------------------------------------


def test_injected_skipped_helper_freeze_is_caught_by_rl006():
    path = REPO_ROOT / "src" / "repro" / "processes" / "map_process.py"
    source = path.read_text(encoding="utf-8")
    assert codes(lint_source(source, str(path))) == []  # the real file is sound
    mutated = source.replace("        _freeze(d0, d1)\n", "")
    assert mutated != source
    violations = lint_source(mutated, str(path))
    assert "RL006" in codes(violations)
    (rl006,) = [v for v in violations if v.code == "RL006"]
    assert "_generator_validated" in rl006.message


def test_injected_conditional_helper_freeze_is_caught_by_rl006():
    # A helper that freezes behind a data-dependent branch stops being a
    # freeze oracle: the certificate it used to back must be flagged again.
    path = REPO_ROOT / "src" / "repro" / "processes" / "map_process.py"
    source = path.read_text(encoding="utf-8")
    mutated = source.replace(
        "    for array in arrays:\n        array.setflags(write=False)\n",
        "    for array in arrays:\n"
        "        if array.size:\n"
        "            array.setflags(write=False)\n",
    )
    assert mutated != source
    assert "RL006" in codes(lint_source(mutated, str(path)))


# ---------------------------------------------------------------------------
# Acceptance: performance (coarse thresholds)
# ---------------------------------------------------------------------------


def test_lint_src_tests_cold_under_10s_and_warm_2x(tmp_path):
    # 10 s budget: the v4 shape layer adds a second abstract-interpretation
    # walk per file on top of the v3 symbol/effect analysis.
    cache = tmp_path / "cache.json"
    paths = [REPO_ROOT / "src", REPO_ROOT / "tests"]

    start = time.perf_counter()
    cold = Project(paths, root=REPO_ROOT, cache_path=cache)
    cold.lint()
    cold_elapsed = time.perf_counter() - start
    assert cold.stats["cache_hits"] == 0
    assert cold_elapsed < 10.0, f"cold lint took {cold_elapsed:.2f}s"

    start = time.perf_counter()
    warm = Project(paths, root=REPO_ROOT, cache_path=cache)
    warm.lint()
    warm_elapsed = time.perf_counter() - start
    assert warm.stats["analyzed"] == 0
    assert warm_elapsed < cold_elapsed / 2.0, (
        f"warm {warm_elapsed:.2f}s vs cold {cold_elapsed:.2f}s"
    )
