"""Self-tests of tools.reprolint against its seeded fixtures.

Every rule has a ``bad`` fixture with known violations and a corrected
``good`` twin that must be clean; the suite also exercises noqa
suppression, syntax-error reporting, the CLI exit codes, and -- the
acceptance criterion -- that the repo's own ``src`` and ``tests`` trees
lint clean.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import lint_file, lint_paths, lint_source, render
from tools.reprolint.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
)
from tools.reprolint.core import iter_python_files
from tools.reprolint.project import Project

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tools" / "reprolint" / "fixtures"


def codes(violations):
    return [v.code for v in violations]


# ---------------------------------------------------------------------------
# Fixtures: every rule fires on its bad twin, stays quiet on its good twin.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    ("name", "expected"),
    [
        ("rl001", ["RL001", "RL001"]),
        ("rl002", ["RL002", "RL002"]),
        ("rl003", ["RL003", "RL003", "RL003"]),
        ("rl004", ["RL004", "RL004"]),
        ("rl005", ["RL005", "RL005"]),
        ("rl006", ["RL006", "RL006", "RL006"]),
        ("rl010", ["RL010", "RL010"]),
        ("rl012", ["RL012", "RL012", "RL012"]),
        ("rl013", ["RL013", "RL013", "RL013", "RL013"]),
        ("rl014", ["RL014", "RL014", "RL014"]),
        ("rl015", ["RL015", "RL015", "RL015"]),
        ("rl016", ["RL016", "RL016", "RL016", "RL016"]),
        ("rl017", ["RL017", "RL017", "RL017"]),
        ("rl018", ["RL018", "RL018", "RL018"]),
        ("rl019", ["RL019", "RL019"]),
        ("rl020", ["RL020", "RL020", "RL020", "RL020"]),
    ],
)
def test_bad_fixture_fires(name, expected):
    violations = lint_file(FIXTURES / f"{name}_bad.py")
    assert codes(violations) == expected


@pytest.mark.parametrize(
    "name",
    [
        "rl001",
        "rl002",
        "rl003",
        "rl004",
        "rl005",
        "rl006",
        "rl010",
        "rl012",
        "rl013",
        "rl014",
        "rl015",
        "rl016",
        "rl017",
        "rl018",
        "rl019",
        "rl020",
    ],
)
def test_good_fixture_is_clean(name):
    assert lint_file(FIXTURES / f"{name}_good.py") == []


# The project-level rules (RL007-RL009) need the cross-file analyzer.


@pytest.mark.parametrize(
    ("name", "expected"),
    [
        ("rl008", ["RL008", "RL008"]),
        ("rl009", ["RL009", "RL009"]),
    ],
)
def test_project_rule_bad_fixture_fires(name, expected):
    project = Project([FIXTURES / f"{name}_bad.py"])
    assert codes(project.lint()) == expected


@pytest.mark.parametrize("name", ["rl008", "rl009"])
def test_project_rule_good_fixture_is_clean(name):
    assert Project([FIXTURES / f"{name}_good.py"]).lint() == []


@pytest.mark.parametrize(
    ("name", "expected"),
    [
        ("rl007_bad_pkg", ["RL007", "RL007"]),
        ("rl007_good_pkg", []),
    ],
)
def test_rl007_package_fixtures(name, expected):
    project = Project(
        [FIXTURES / name / "__init__.py"],
        root=REPO_ROOT,
        contract_packages=(f"tools.reprolint.fixtures.{name}",),
    )
    assert codes(project.lint()) == expected


@pytest.mark.parametrize(
    ("name", "expected"),
    [
        ("rl011_bad_pkg", ["RL011", "RL011"]),
        ("rl011_good_pkg", []),
    ],
)
def test_rl011_package_fixtures(name, expected):
    # Explicit file paths: the linter's own fixtures dir is exempt from
    # directory discovery, just like the rl007 package fixtures above.
    project = Project(
        sorted((FIXTURES / name).glob("*.py")),
        root=REPO_ROOT,
        contract_packages=(),
        purity_packages=(f"tools.reprolint.fixtures.{name}",),
    )
    assert codes(project.lint()) == expected


def test_violations_carry_location_and_render():
    violations = lint_file(FIXTURES / "rl001_bad.py")
    first = violations[0]
    assert first.line == 11  # the plain self.rate assignment
    rendered = first.render()
    assert rendered.startswith(str(FIXTURES / "rl001_bad.py"))
    assert ":11:" in rendered
    assert "RL001" in rendered


# ---------------------------------------------------------------------------
# noqa suppression
# ---------------------------------------------------------------------------


def test_bare_noqa_silences_line():
    source = "def f(timeout):  # noqa\n    return timeout\n"
    assert lint_source(source) == []


def test_coded_noqa_silences_matching_rule():
    source = "def f(timeout):  # noqa: RL003\n    return timeout\n"
    assert lint_source(source) == []


def test_coded_noqa_for_other_rule_does_not_silence():
    source = "def f(timeout):  # noqa: RL001\n    return timeout\n"
    assert codes(lint_source(source)) == ["RL003"]


def test_mixed_ruff_and_reprolint_codes():
    source = "def f(timeout):  # noqa: E501, RL003\n    return timeout\n"
    assert lint_source(source) == []


# ---------------------------------------------------------------------------
# Rule-specific edge cases (beyond the fixture twins)
# ---------------------------------------------------------------------------


def test_rl001_non_frozen_dataclass_is_quiet():
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Mutable:\n"
        "    x: int = 0\n"
        "    def bump(self):\n"
        "        self.x += 1\n"
    )
    assert lint_source(source) == []


def test_rl002_plain_class_is_quiet():
    source = (
        "import numpy as np\n"
        "class Holder:\n"
        "    def __init__(self):\n"
        "        self.a = np.zeros(3)\n"
    )
    assert lint_source(source) == []


def test_rl003_ms_suffix_is_quiet():
    assert lint_source("def f(timeout_ms):\n    return timeout_ms\n") == []


def test_rl003_flags_wrong_unit_suffix():
    assert codes(lint_source("def f(delay_sec):\n    return delay_sec\n")) == [
        "RL003"
    ]


def test_rl004_suppression_without_bg_metric_is_quiet():
    source = (
        "import numpy as np\n"
        "def safe_ratio(a, b):\n"
        "    with np.errstate(divide='ignore'):\n"
        "        return a / b\n"
    )
    assert lint_source(source) == []


def test_rl005_ignores_two_term_sums():
    source = (
        "def f(a0, a1):\n"
        "    return stationary_distribution(a0 + a1)\n"
    )
    assert lint_source(source) == []


def test_syntax_error_reports_rl000():
    violations = lint_source("def broken(:\n")
    assert codes(violations) == ["RL000"]


# ---------------------------------------------------------------------------
# Injected bugs in the real protocol modules (RL012-RL015)
# ---------------------------------------------------------------------------


def _real_source(rel: str) -> tuple[str, str]:
    path = REPO_ROOT / rel
    return path.read_text(encoding="utf-8"), str(path)


def test_injected_lifecycle_bypass_in_worker_is_caught_by_rl012():
    source, path = _real_source("src/repro/jobs/worker.py")
    assert [v for v in lint_source(source, path) if v.code == "RL012"] == []
    mutated = source + (
        "\n\ndef _force_done(record, now_ms):\n"
        "    return dataclasses.replace(\n"
        "        record, state=COMPLETED, finished_ms=now_ms\n"
        "    )\n"
    )
    assert "RL012" in codes(lint_source(mutated, path))


def test_injected_transition_outside_table_is_caught_by_rl012():
    source, path = _real_source("src/repro/jobs/lifecycle.py")
    assert [v for v in lint_source(source, path) if v.code == "RL012"] == []
    mutated = source + (
        "\n\nARCHIVED = \"archived\"\n"
        "\n\ndef archive(job, now_ms):\n"
        "    return job._to(ARCHIVED, now_ms)\n"
    )
    assert "RL012" in codes(lint_source(mutated, path))


def test_injected_torn_write_in_store_is_caught_by_rl013():
    source, path = _real_source("src/repro/jobs/store.py")
    assert [v for v in lint_source(source, path) if v.code == "RL013"] == []
    mutated = source.replace("        os.replace(tmp, path)\n", "")
    assert mutated != source
    rl013 = [v for v in lint_source(mutated, path) if v.code == "RL013"]
    assert rl013 and "atomic-write idiom" in rl013[0].message


def test_injected_autocommit_mutation_in_sqlite_store_is_caught_by_rl013():
    """Stripping the connection from the transaction context leaves the
    mutating statements in autocommit mode -- RL013(c) must fire."""
    source, path = _real_source("src/repro/jobs/sqlite_store.py")
    assert [v for v in lint_source(source, path) if v.code == "RL013"] == []
    mutated = source.replace(
        "with self._lock, self._conn:", "with self._lock:"
    )
    assert mutated != source
    rl013 = [v for v in lint_source(mutated, path) if v.code == "RL013"]
    assert rl013 and "autocommit" in rl013[0].message


def test_injected_swallowed_contract_violation_is_caught_by_rl014():
    source, path = _real_source("src/repro/engine/resilience.py")
    assert [v for v in lint_source(source, path) if v.code == "RL014"] == []
    mutated = source + (
        "\n\ndef _swallow(thunk):\n"
        "    try:\n"
        "        return thunk()\n"
        "    except ContractViolation:\n"
        "        return None\n"
    )
    assert "RL014" in codes(lint_source(mutated, path))


def test_injected_laundered_cancellation_is_caught_by_rl014():
    source, path = _real_source("src/repro/jobs/worker.py")
    mutated = source + (
        "\n\ndef _swallow_cancel(thunk, index):\n"
        "    try:\n"
        "        return thunk()\n"
        "    except SweepCancelled as exc:\n"
        "        return FailedSolve(index=index, error=str(exc))\n"
    )
    assert "RL014" in codes(lint_source(mutated, path))


def test_injected_env_backdoor_is_caught_by_rl015():
    source, path = _real_source("src/repro/jobs/worker.py")
    assert [v for v in lint_source(source, path) if v.code == "RL015"] == []
    mutated = source + (
        "\n\ndef _debug_tag():\n"
        "    return os.environ.get(\"REPRO_JOBS_DEBUG\", \"\")\n"
    )
    assert "RL015" in codes(lint_source(mutated, path))


# ---------------------------------------------------------------------------
# Discovery and the repo-wide acceptance criterion
# ---------------------------------------------------------------------------


def test_iter_python_files_skips_fixture_dirs():
    found = list(iter_python_files([REPO_ROOT / "tools"]))
    assert all("fixtures" not in p.parts for p in found)
    assert any(p.name == "rules.py" for p in found)


def test_explicit_fixture_path_is_still_linted():
    assert lint_paths([FIXTURES / "rl003_bad.py"]) != []


def test_non_reprolint_fixtures_dir_is_linted(tmp_path):
    # Only the linter's own seeded fixtures are exempt; a user-code
    # tests/fixtures directory must still be discovered.
    user_fixtures = tmp_path / "tests" / "fixtures"
    user_fixtures.mkdir(parents=True)
    (user_fixtures / "sample.py").write_text(
        "def f(timeout):\n    return timeout\n", encoding="utf-8"
    )
    seeded = tmp_path / "tools" / "reprolint" / "fixtures"
    seeded.mkdir(parents=True)
    (seeded / "seeded.py").write_text(
        "def f(timeout):\n    return timeout\n", encoding="utf-8"
    )
    found = list(iter_python_files([tmp_path]))
    assert user_fixtures / "sample.py" in found
    assert seeded / "seeded.py" not in found
    assert codes(lint_paths([tmp_path])) == ["RL003"]


def test_repo_is_clean_modulo_committed_baseline(monkeypatch):
    # Relative paths so violation paths match the committed baseline keys.
    monkeypatch.chdir(REPO_ROOT)
    violations = lint_paths(
        [Path("src"), Path("tests"), Path("benchmarks"), Path("examples"), Path("tools")]
    )
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
    kept, _ = apply_baseline(violations, baseline)
    assert kept == [], render(kept)


def test_committed_baseline_is_rl007_only():
    # The accepted debt is contract coverage; anything else must be fixed,
    # not baselined.
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
    assert baseline, "committed baseline missing or unreadable"
    assert {code for by_code in baseline.values() for code in by_code} == {"RL007"}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,  # noqa: RL003 -- subprocess API, seconds by contract
    )


def test_cli_exits_zero_on_clean_tree():
    result = run_cli("src", "tests")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 violations" in result.stdout


def test_cli_exits_one_on_violations():
    result = run_cli(str(FIXTURES / "rl001_bad.py"))
    assert result.returncode == 1
    assert "RL001" in result.stdout


def test_cli_exits_two_on_missing_path():
    result = run_cli("no/such/dir")
    assert result.returncode == 2
    assert "no such path" in result.stderr


def test_cli_list_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for number in range(1, 21):
        assert f"RL{number:03d}" in result.stdout


def test_cli_explain_prints_rationale_example_and_fix():
    result = run_cli("--explain", "rl016")
    assert result.returncode == 0
    out = result.stdout
    assert "RL016" in out
    for section in ("Why", "Example", "Fix"):
        assert section in out, out


def test_cli_explain_unknown_rule_exits_two():
    result = run_cli("--explain", "RL999")
    assert result.returncode == 2
    assert "unknown rule" in result.stderr


def test_cli_no_baseline_surfaces_accepted_debt():
    result = run_cli("--no-baseline", "src", "tests")
    assert result.returncode == 1
    assert "RL007" in result.stdout


def test_cli_applies_committed_baseline_by_default():
    result = run_cli("src", "tests")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "baselined violation(s) not shown" in result.stdout
