"""Self-tests of tools.reprolint against its seeded fixtures.

Every rule has a ``bad`` fixture with known violations and a corrected
``good`` twin that must be clean; the suite also exercises noqa
suppression, syntax-error reporting, the CLI exit codes, and -- the
acceptance criterion -- that the repo's own ``src`` and ``tests`` trees
lint clean.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import lint_file, lint_paths, lint_source, render
from tools.reprolint.core import iter_python_files

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tools" / "reprolint" / "fixtures"


def codes(violations):
    return [v.code for v in violations]


# ---------------------------------------------------------------------------
# Fixtures: every rule fires on its bad twin, stays quiet on its good twin.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    ("name", "expected"),
    [
        ("rl001", ["RL001", "RL001"]),
        ("rl002", ["RL002", "RL002"]),
        ("rl003", ["RL003", "RL003", "RL003"]),
        ("rl004", ["RL004", "RL004"]),
        ("rl005", ["RL005", "RL005"]),
    ],
)
def test_bad_fixture_fires(name, expected):
    violations = lint_file(FIXTURES / f"{name}_bad.py")
    assert codes(violations) == expected


@pytest.mark.parametrize("name", ["rl001", "rl002", "rl003", "rl004", "rl005"])
def test_good_fixture_is_clean(name):
    assert lint_file(FIXTURES / f"{name}_good.py") == []


def test_violations_carry_location_and_render():
    violations = lint_file(FIXTURES / "rl001_bad.py")
    first = violations[0]
    assert first.line == 11  # the plain self.rate assignment
    rendered = first.render()
    assert rendered.startswith(str(FIXTURES / "rl001_bad.py"))
    assert ":11:" in rendered
    assert "RL001" in rendered


# ---------------------------------------------------------------------------
# noqa suppression
# ---------------------------------------------------------------------------


def test_bare_noqa_silences_line():
    source = "def f(timeout):  # noqa\n    return timeout\n"
    assert lint_source(source) == []


def test_coded_noqa_silences_matching_rule():
    source = "def f(timeout):  # noqa: RL003\n    return timeout\n"
    assert lint_source(source) == []


def test_coded_noqa_for_other_rule_does_not_silence():
    source = "def f(timeout):  # noqa: RL001\n    return timeout\n"
    assert codes(lint_source(source)) == ["RL003"]


def test_mixed_ruff_and_reprolint_codes():
    source = "def f(timeout):  # noqa: E501, RL003\n    return timeout\n"
    assert lint_source(source) == []


# ---------------------------------------------------------------------------
# Rule-specific edge cases (beyond the fixture twins)
# ---------------------------------------------------------------------------


def test_rl001_non_frozen_dataclass_is_quiet():
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Mutable:\n"
        "    x: int = 0\n"
        "    def bump(self):\n"
        "        self.x += 1\n"
    )
    assert lint_source(source) == []


def test_rl002_plain_class_is_quiet():
    source = (
        "import numpy as np\n"
        "class Holder:\n"
        "    def __init__(self):\n"
        "        self.a = np.zeros(3)\n"
    )
    assert lint_source(source) == []


def test_rl003_ms_suffix_is_quiet():
    assert lint_source("def f(timeout_ms):\n    return timeout_ms\n") == []


def test_rl003_flags_wrong_unit_suffix():
    assert codes(lint_source("def f(delay_sec):\n    return delay_sec\n")) == [
        "RL003"
    ]


def test_rl004_suppression_without_bg_metric_is_quiet():
    source = (
        "import numpy as np\n"
        "def safe_ratio(a, b):\n"
        "    with np.errstate(divide='ignore'):\n"
        "        return a / b\n"
    )
    assert lint_source(source) == []


def test_rl005_ignores_two_term_sums():
    source = (
        "def f(a0, a1):\n"
        "    return stationary_distribution(a0 + a1)\n"
    )
    assert lint_source(source) == []


def test_syntax_error_reports_rl000():
    violations = lint_source("def broken(:\n")
    assert codes(violations) == ["RL000"]


# ---------------------------------------------------------------------------
# Discovery and the repo-wide acceptance criterion
# ---------------------------------------------------------------------------


def test_iter_python_files_skips_fixture_dirs():
    found = list(iter_python_files([REPO_ROOT / "tools"]))
    assert all("fixtures" not in p.parts for p in found)
    assert any(p.name == "rules.py" for p in found)


def test_explicit_fixture_path_is_still_linted():
    assert lint_paths([FIXTURES / "rl003_bad.py"]) != []


def test_repo_src_and_tests_are_clean():
    violations = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert violations == [], render(violations)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,  # noqa: RL003 -- subprocess API, seconds by contract
    )


def test_cli_exits_zero_on_clean_tree():
    result = run_cli("src", "tests")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 violations" in result.stdout


def test_cli_exits_one_on_violations():
    result = run_cli(str(FIXTURES / "rl001_bad.py"))
    assert result.returncode == 1
    assert "RL001" in result.stdout


def test_cli_exits_two_on_missing_path():
    result = run_cli("no/such/dir")
    assert result.returncode == 2
    assert "no such path" in result.stderr


def test_cli_list_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for code in ["RL001", "RL002", "RL003", "RL004", "RL005"]:
        assert code in result.stdout
