"""Unit tests of the shape/stochastic-kind abstract interpreter.

Three layers, mirroring tools/reprolint/shapes.py:

* the lattice itself -- ``ArrayFact``, ``join``, the canonical seeds;
* the transfer functions -- matmul, kron, stacking, slicing, reductions,
  elementwise broadcasts -- exercised through ``lint_source`` so the
  facts are observed exactly the way the rules observe them;
* the rules against **real modules**: for every rule RL016-RL020 a bug
  is injected into the actual repro source and must be reported at the
  injected line (and the unmodified module must stay clean).

The cross-file wrapper pass (``Project._rl016_rl017_shape_flow``) is
tested on synthetic packages at the bottom.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tools.reprolint.core import lint_source
from tools.reprolint.project import Project
from tools.reprolint.shapes import (
    CANONICAL_SEEDS,
    GENERATOR,
    PROB_SCALAR,
    RATE_BLOCK,
    RATE_SCALAR,
    SUBGENERATOR,
    ArrayFact,
    join,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_PATH = "src/repro/qbd/fake.py"  # non-test path: all rules active


def codes(violations):
    return [v.code for v in violations]


def shape_codes(source, path=SRC_PATH):
    return [v for v in lint_source(source, path) if v.code.startswith("RL0")
            and v.code >= "RL016"]


def write_tree(tmp_path: Path, files: dict[str, str]) -> list[Path]:
    paths = []
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        paths.append(target)
    return paths


# ---------------------------------------------------------------------------
# The lattice
# ---------------------------------------------------------------------------


def test_join_is_agreement():
    a = ArrayFact(("m", "m"), SUBGENERATOR)
    assert join(a, a) == a
    assert join(a, None) is None
    merged = join(a, ArrayFact(("m", "n_b"), SUBGENERATOR))
    assert merged.shape == ("m", "?")
    assert merged.kind == SUBGENERATOR
    assert join(a, ArrayFact(("m", "m"), RATE_BLOCK)).kind is None


def test_join_drops_rank_disagreement_and_flags():
    a = ArrayFact(("m", "m"), transposed=True, stacked=True)
    b = ArrayFact(("N", "m", "m"))
    assert join(a, b).shape is None
    assert not join(a, b).transposed  # transposed only if both are
    assert not join(a, b).stacked


def test_fact_json_roundtrip():
    fact = ArrayFact(("N", "m", "m"), RATE_BLOCK, stacked=True)
    assert ArrayFact.from_json(fact.to_json()) == fact
    unknown = ArrayFact(None, None)
    assert ArrayFact.from_json(unknown.to_json()) == unknown


def test_canonical_seeds_cover_the_model_fields():
    assert CANONICAL_SEEDS["d0"].kind == SUBGENERATOR
    assert CANONICAL_SEEDS["d1"].kind == RATE_BLOCK
    assert CANONICAL_SEEDS["b01"].shape == ("n_b", "m")
    assert CANONICAL_SEEDS["b10"].shape == ("m", "n_b")
    assert CANONICAL_SEEDS["service_rate"].kind == RATE_SCALAR
    assert CANONICAL_SEEDS["bg_probability"].kind == PROB_SCALAR


# ---------------------------------------------------------------------------
# Transfer functions (observed through the rules)
# ---------------------------------------------------------------------------


def test_assignment_kills_the_canonical_seed():
    # A locally computed d0 means *that* value, not the field seed: the
    # proper-generator construction below must not be mistaken for a
    # standalone subgenerator.
    source = (
        "import numpy as np\n"
        "def build(rates):\n"
        "    base = np.asarray(rates, dtype=float)\n"
        "    d0 = base - np.diag(base.sum(axis=1))\n"
        "    return stationary_distribution(d0)\n"
    )
    assert shape_codes(source) == []


def test_d0_plus_d1_is_a_generator():
    source = (
        "def phase_pi(d0, d1):\n"
        "    return stationary_distribution(d0 + d1)\n"
    )
    assert shape_codes(source) == []


def test_standalone_d0_into_stationary_fires_rl017():
    source = (
        "def phase_pi(d0):\n"
        "    return stationary_distribution(d0)\n"
    )
    assert codes(shape_codes(source)) == ["RL017"]


def test_transposed_block_into_r_matrix_fires_rl016():
    source = (
        "from repro.qbd.rmatrix import r_matrix\n"
        "def solve(a0, a1, a2):\n"
        "    return r_matrix(a0, a1, a2.T)\n"
    )
    violations = shape_codes(source)
    assert codes(violations) == ["RL016"]
    assert violations[0].line == 3


def test_transpose_of_a_transpose_is_clean():
    source = (
        "from repro.qbd.rmatrix import r_matrix\n"
        "def solve(a0, a1, a2):\n"
        "    return r_matrix(a0, a1, a2.T.T)\n"
    )
    assert shape_codes(source) == []


def test_numeric_matmul_mismatch_fires_rl016():
    source = (
        "import numpy as np\n"
        "def bad():\n"
        "    a = np.zeros((3, 4))\n"
        "    b = np.zeros((3, 4))\n"
        "    return a @ b\n"
    )
    assert codes(shape_codes(source)) == ["RL016"]


def test_symbolic_matmul_of_unrelated_dims_is_quiet():
    # 'a' and 'phases' are not canonical dims; at runtime they usually
    # alias ('d1 @ np.ones(phases)'), so no conflict is reported.
    source = (
        "import numpy as np\n"
        "def row_sums(d1, phases):\n"
        "    return d1 @ np.ones(phases)\n"
    )
    assert shape_codes(source) == []


def test_kron_product_dims_conform():
    # kron((m_g,m_g),(ph,ph)) -> (m_g*ph, m_g*ph): multiplying with an
    # (m_g*ph, m_g*ph) block must not report a mismatch.
    source = (
        "import numpy as np\n"
        "def assemble(d1, m_g, a1):\n"
        "    a0 = np.kron(np.eye(m_g), d1)\n"
        "    return a0 @ a1\n"
    )
    assert shape_codes(source) == []


def test_slicing_and_indexing_transfer():
    # A full slice keeps the symbolic dim; an integer index drops the
    # axis, so q[0] @ q is a (m,) @ (m,m) vector product -- fine.
    source = (
        "def take(a1):\n"
        "    row = a1[0]\n"
        "    return row @ a1\n"
    )
    assert shape_codes(source) == []


def test_stack_reduction_without_axis_fires_rl018():
    source = (
        "import numpy as np\n"
        "def total(a1, a2):\n"
        "    stack = np.stack((a1, a2))\n"
        "    return stack.sum()\n"
    )
    violations = shape_codes(source)
    assert codes(violations) == ["RL018"]
    assert violations[0].line == 4


def test_stack_of_unknown_iterable_stays_unknown_and_quiet():
    # A fact survives only what the transfer functions model: stacking an
    # opaque iterable yields no shape, and unknown never fires a rule.
    source = (
        "import numpy as np\n"
        "def total(blocks):\n"
        "    stack = np.stack(blocks)\n"
        "    return stack.sum()\n"
    )
    assert shape_codes(source) == []


def test_stack_reduction_over_trailing_axes_is_clean():
    source = (
        "import numpy as np\n"
        "def per_item(a1, a2):\n"
        "    stack = np.stack((a1, a2))\n"
        "    return stack.sum(axis=(1, 2))\n"
    )
    assert shape_codes(source) == []


def test_rl018_is_not_applied_under_tests():
    source = (
        "import numpy as np\n"
        "def total(a1, a2):\n"
        "    stack = np.stack((a1, a2))\n"
        "    return stack.sum()\n"
    )
    assert lint_source(source, "tests/qbd/test_batched.py") == []


def test_misaligned_stack_broadcast_fires_rl018():
    # (N,) * (N, m, m) broadcasts along the *trailing* axis at runtime --
    # the per-item weights silently hit the wrong dimension.
    source = (
        "import numpy as np\n"
        "def weight(a1, a2):\n"
        "    stack = np.stack((a1, a2))\n"
        "    weights = np.stack((0.25, 0.75))\n"
        "    return stack * weights\n"
    )
    assert codes(shape_codes(source)) == ["RL018"]


def test_rl019_guarded_scope_is_clean():
    source = (
        "import math\n"
        "def floor_check(solution, floor):\n"
        "    rate = solution.bg_completion_rate\n"
        "    return math.isfinite(rate) and rate >= floor\n"
    )
    assert shape_codes(source) == []


def test_rl019_unguarded_compare_fires():
    source = (
        "def floor_check(solution, floor):\n"
        "    rate = solution.bg_completion_rate\n"
        "    return rate >= floor\n"
    )
    violations = shape_codes(source)
    assert codes(violations) == ["RL019"]
    assert violations[0].line == 3


def test_rl020_narrow_dtype_and_floor_division():
    source = (
        "import numpy as np\n"
        "def shrink(a1, budget_ms):\n"
        "    small = a1.astype(np.float32)\n"
        "    half_ms = budget_ms // 2\n"
        "    return small, half_ms\n"
    )
    assert codes(shape_codes(source)) == ["RL020", "RL020"]


def test_rl020_integer_counts_may_floor_divide():
    source = (
        "def split(total_states, phases):\n"
        "    return total_states // phases\n"
    )
    assert shape_codes(source) == []


# ---------------------------------------------------------------------------
# Injected bugs in the real modules (RL016-RL020)
# ---------------------------------------------------------------------------


def _real_source(rel: str) -> tuple[str, str]:
    path = REPO_ROOT / rel
    return path.read_text(encoding="utf-8"), str(path)


def _line_of(source: str, needle: str) -> int:
    for number, line in enumerate(source.splitlines(), start=1):
        if needle in line:
            return number
    raise AssertionError(f"needle {needle!r} not found")


def test_injected_transposed_boundary_block_is_caught_by_rl016():
    source, path = _real_source("src/repro/qbd/structure.py")
    assert [v for v in lint_source(source, path) if v.code == "RL016"] == []
    mutated = source.replace("b10=a2, a0=a0", "b10=a2.T, a0=a0")
    assert mutated != source
    rl016 = [v for v in lint_source(mutated, path) if v.code == "RL016"]
    assert rl016, "injected a2.T at the QBDProcess constructor not caught"
    assert rl016[0].line == _line_of(mutated, "b10=a2.T")


def test_injected_transposed_kron_operand_is_caught_by_rl016():
    source, path = _real_source("src/repro/core/blocks.py")
    assert [v for v in lint_source(source, path) if v.code == "RL016"] == []
    mutated = source.replace(
        "a0 = np.kron(np.eye(m_g), d1)", "a0 = np.kron(np.eye(m_g), d1.T)"
    )
    assert mutated != source
    rl016 = [v for v in lint_source(mutated, path) if v.code == "RL016"]
    assert rl016, "injected d1.T inside np.kron not caught"
    assert rl016[0].line == _line_of(mutated, "np.kron(np.eye(m_g), d1.T)")


def test_injected_standalone_d0_stationary_is_caught_by_rl017():
    source, path = _real_source("src/repro/processes/map_process.py")
    assert [v for v in lint_source(source, path) if v.code == "RL017"] == []
    mutated = source + (
        "\n\ndef _broken_phase_pi(arrival):\n"
        "    return stationary_distribution(arrival.d0)\n"
    )
    rl017 = [v for v in lint_source(mutated, path) if v.code == "RL017"]
    assert rl017, "injected stationary_distribution(d0) not caught"
    assert rl017[0].line == _line_of(
        mutated, "stationary_distribution(arrival.d0)"
    )


def test_injected_flat_rhs_in_batched_solve_is_caught_by_rl018():
    source, path = _real_source("src/repro/qbd/batched.py")
    assert [v for v in lint_source(source, path) if v.code == "RL018"] == []
    mutated = source.replace(
        "np.linalg.solve(eye - r, np.ones((n, m, 1)))[..., 0]",
        "np.linalg.solve(eye - r, np.ones((n, m)))",
    )
    assert mutated != source
    rl018 = [v for v in lint_source(mutated, path) if v.code == "RL018"]
    assert rl018, "injected 2-D RHS under a stacked solve not caught"
    assert rl018[0].line == _line_of(mutated, "np.ones((n, m)))")


def test_injected_unguarded_rate_compare_is_caught_by_rl019():
    source, path = _real_source("src/repro/core/metrics.py")
    assert [v for v in lint_source(source, path) if v.code == "RL019"] == []
    mutated = source + (
        "\n\ndef _meets_floor(solution, floor):\n"
        "    rate = solution.bg_completion_rate\n"
        "    return rate >= floor\n"
    )
    rl019 = [v for v in lint_source(mutated, path) if v.code == "RL019"]
    assert rl019, "injected unguarded bg_completion_rate compare not caught"
    assert rl019[0].line == _line_of(mutated, "return rate >= floor")


def test_injected_float32_solve_is_caught_by_rl020():
    source, path = _real_source("src/repro/qbd/rmatrix.py")
    assert [v for v in lint_source(source, path) if v.code == "RL020"] == []
    mutated = source + (
        "\n\ndef _shrink(a1):\n"
        "    return np.asarray(a1, dtype=np.float32)\n"
    )
    rl020 = [v for v in lint_source(mutated, path) if v.code == "RL020"]
    assert rl020, "injected float32 narrowing not caught"
    assert rl020[0].line == _line_of(mutated, "dtype=np.float32")


# ---------------------------------------------------------------------------
# Cross-file wrapper flow (Project._rl016_rl017_shape_flow)
# ---------------------------------------------------------------------------


def test_wrapper_forwarding_d0_into_stationary_fires_rl017(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/solver.py": (
                "def phase_pi(q):\n"
                "    return stationary_distribution(q)\n"
            ),
            "pkg/caller.py": (
                "from pkg.solver import phase_pi\n"
                "def use(d0):\n"
                "    return phase_pi(d0)\n"
            ),
        },
    )
    project = Project([tmp_path / "pkg"], root=tmp_path)
    violations = [v for v in project.lint() if v.code == "RL017"]
    assert violations, "wrapper-forwarded subgenerator not caught"
    assert violations[0].path.endswith("caller.py")
    assert violations[0].line == 3


def test_wrapper_forwarding_transposed_block_fires_rl016(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/solver.py": (
                "from repro.qbd.rmatrix import r_matrix\n"
                "def warm(a0, a1, a2):\n"
                "    return r_matrix(a0, a1, a2)\n"
            ),
            "pkg/caller.py": (
                "from pkg.solver import warm\n"
                "def use(a0, a1, a2):\n"
                "    return warm(a0, a1, a2.T)\n"
            ),
        },
    )
    project = Project([tmp_path / "pkg"], root=tmp_path)
    violations = [v for v in project.lint() if v.code == "RL016"]
    assert violations, "wrapper-forwarded transposed block not caught"
    assert violations[0].path.endswith("caller.py")
    assert violations[0].line == 3


def test_wrapper_with_clean_arguments_is_quiet(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/solver.py": (
                "def phase_pi(q):\n"
                "    return stationary_distribution(q)\n"
            ),
            "pkg/caller.py": (
                "from pkg.solver import phase_pi\n"
                "def use(d0, d1):\n"
                "    return phase_pi(d0 + d1)\n"
            ),
        },
    )
    project = Project([tmp_path / "pkg"], root=tmp_path)
    assert [v for v in project.lint() if v.code in ("RL016", "RL017")] == []
