"""Baseline (ratchet) tests: load, apply, update, tolerance."""

from __future__ import annotations

import json
from pathlib import Path

from tools.reprolint.baseline import (
    apply_baseline,
    load_baseline,
    update_baseline,
)
from tools.reprolint.core import Violation


def v(path, code, line=1):
    return Violation(path, line, 0, code, f"{code} at {path}:{line}")


def test_update_then_load_round_trips(tmp_path):
    target = tmp_path / "baseline.json"
    violations = [v("a.py", "RL007"), v("a.py", "RL007", 9), v("b.py", "RL003")]
    update_baseline(target, violations)
    baseline = load_baseline(target)
    assert baseline == {"a.py": {"RL007": 2}, "b.py": {"RL003": 1}}


def test_apply_masks_counts_and_surfaces_excess():
    baseline = {"a.py": {"RL007": 1}}
    violations = [v("a.py", "RL007", 3), v("a.py", "RL007", 8)]
    kept, dropped = apply_baseline(violations, baseline)
    assert dropped == 1
    assert kept == [violations[1]]  # the first occurrence is consumed


def test_apply_does_not_mask_other_rules_or_files():
    baseline = {"a.py": {"RL007": 5}}
    violations = [v("a.py", "RL003"), v("b.py", "RL007")]
    kept, dropped = apply_baseline(violations, baseline)
    assert dropped == 0
    assert kept == violations


def test_missing_or_malformed_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert load_baseline(bad) == {}
    wrong_version = tmp_path / "wrong.json"
    wrong_version.write_text(
        json.dumps({"version": 99, "entries": {"a.py": {"RL007": 1}}}),
        encoding="utf-8",
    )
    assert load_baseline(wrong_version) == {}


def test_update_baseline_writes_sorted_deterministic_file(tmp_path):
    target = tmp_path / "baseline.json"
    update_baseline(target, [v("b.py", "RL007"), v("a.py", "RL003")])
    first = target.read_text(encoding="utf-8")
    update_baseline(target, [v("a.py", "RL003"), v("b.py", "RL007")])
    assert target.read_text(encoding="utf-8") == first
    data = json.loads(first)
    assert list(data["entries"]) == ["a.py", "b.py"]


def test_update_baseline_prunes_fixed_entries(tmp_path):
    # A (file, rule) key whose count reached zero must not linger as
    # slack: rewriting from the current violations drops it.
    target = tmp_path / "baseline.json"
    update_baseline(target, [v("a.py", "RL007"), v("b.py", "RL003")])
    update_baseline(target, [v("a.py", "RL007")])
    assert load_baseline(target) == {"a.py": {"RL007": 1}}


def test_scoped_update_preserves_out_of_scope_debt(tmp_path):
    # --update-baseline src must not discard debt recorded for tests/:
    # entries outside the linted scope survive a scoped rewrite verbatim.
    target = tmp_path / "baseline.json"
    update_baseline(
        target,
        [v("src/a.py", "RL007"), v("tests/b.py", "RL007")],
    )
    update_baseline(
        target,
        [],  # the scoped run fixed everything under src/
        linted_paths=[Path("src")],
    )
    assert load_baseline(target) == {"tests/b.py": {"RL007": 1}}


def test_scoped_update_prunes_in_scope_zero_counts(tmp_path):
    target = tmp_path / "baseline.json"
    update_baseline(
        target,
        [v("src/a.py", "RL007"), v("src/a.py", "RL003"), v("tests/b.py", "RL007")],
    )
    update_baseline(
        target,
        [v("src/a.py", "RL007")],  # RL003 fixed, RL007 still present
        linted_paths=[Path("src")],
    )
    assert load_baseline(target) == {
        "src/a.py": {"RL007": 1},
        "tests/b.py": {"RL007": 1},
    }
