"""Unit tests of the intraprocedural dataflow pass behind RL006/RL008."""

from __future__ import annotations

import ast

from tools.reprolint import dataflow


def analyze(source: str) -> dataflow.FunctionAnalysis:
    tree = ast.parse(source)
    funcs = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    assert len(funcs) == 1, "test source must define exactly one function"
    return dataflow.analyze_function(funcs[0])


# ---------------------------------------------------------------------------
# Array and read-only facts
# ---------------------------------------------------------------------------


def test_factory_call_produces_array_fact():
    analysis = analyze(
        "def f(self):\n"
        "    a = np.zeros((2, 2))\n"
        "    object.__setattr__(self, 'a', a)\n"
    )
    assert analysis.unfrozen_self_arrays() == ["self.a"]


def test_setflags_freezes_on_the_straight_path():
    analysis = analyze(
        "def f(self):\n"
        "    a = np.zeros((2, 2))\n"
        "    a.setflags(write=False)\n"
        "    object.__setattr__(self, 'a', a)\n"
    )
    assert analysis.unfrozen_self_arrays() == []


def test_flags_writeable_assignment_freezes_too():
    analysis = analyze(
        "def f(self):\n"
        "    a = np.eye(3)\n"
        "    a.flags.writeable = False\n"
        "    object.__setattr__(self, 'a', a)\n"
    )
    assert analysis.unfrozen_self_arrays() == []


def test_freeze_on_one_branch_only_is_not_enough():
    analysis = analyze(
        "def f(self, flag):\n"
        "    a = np.zeros(3)\n"
        "    if flag:\n"
        "        a.setflags(write=False)\n"
        "    object.__setattr__(self, 'a', a)\n"
    )
    assert analysis.unfrozen_self_arrays() == ["self.a"]


def test_freeze_on_both_branches_holds():
    analysis = analyze(
        "def f(self, flag):\n"
        "    a = np.zeros(3)\n"
        "    if flag:\n"
        "        a.setflags(write=False)\n"
        "    else:\n"
        "        a.setflags(write=False)\n"
        "    object.__setattr__(self, 'a', a)\n"
    )
    assert analysis.unfrozen_self_arrays() == []


def test_copy_of_frozen_array_is_writable_again():
    analysis = analyze(
        "def f(self):\n"
        "    a = np.zeros(3)\n"
        "    a.setflags(write=False)\n"
        "    object.__setattr__(self, 'a', a.copy())\n"
    )
    assert analysis.unfrozen_self_arrays() == ["self.a"]


def test_arithmetic_yields_fresh_writable_array():
    analysis = analyze(
        "def f(self):\n"
        "    a = np.zeros(3)\n"
        "    a.setflags(write=False)\n"
        "    b = a + a\n"
        "    object.__setattr__(self, 'b', b)\n"
    )
    assert analysis.unfrozen_self_arrays() == ["self.b"]


def test_reassignment_kills_readonly_fact():
    analysis = analyze(
        "def f(self):\n"
        "    a = np.zeros(3)\n"
        "    a.setflags(write=False)\n"
        "    a = np.ones(3)\n"
        "    object.__setattr__(self, 'a', a)\n"
    )
    assert analysis.unfrozen_self_arrays() == ["self.a"]


def test_self_attribute_freeze_after_store():
    # The map_process idiom: store first, freeze through self.
    analysis = analyze(
        "def f(self, d0):\n"
        "    self._d0 = np.asarray(d0, dtype=float)\n"
        "    self._d0.setflags(write=False)\n"
        "    self._generator_validated = True\n"
    )
    assert analysis.unfrozen_self_arrays() == []
    assert [c.attr for c in analysis.certificates] == ["_generator_validated"]


# ---------------------------------------------------------------------------
# Certificates and exits
# ---------------------------------------------------------------------------


def test_certificate_recorded_for_object_setattr():
    analysis = analyze(
        "def f(self):\n"
        "    object.__setattr__(self, '_generator_validated', True)\n"
    )
    assert len(analysis.certificates) == 1


def test_raise_path_does_not_reach_exit_state():
    # The array is unfrozen only on the raising path; the certificate
    # never becomes observable there.
    analysis = analyze(
        "def f(self, bad):\n"
        "    a = np.zeros(3)\n"
        "    if bad:\n"
        "        raise ValueError(a)\n"
        "    a.setflags(write=False)\n"
        "    object.__setattr__(self, 'a', a)\n"
    )
    assert analysis.unfrozen_self_arrays() == []


def test_loop_body_freeze_does_not_certify():
    # A for body may run zero times; the skip path keeps a writable.
    analysis = analyze(
        "def f(self, items):\n"
        "    a = np.zeros(3)\n"
        "    for _ in items:\n"
        "        a.setflags(write=False)\n"
        "    object.__setattr__(self, 'a', a)\n"
    )
    assert analysis.unfrozen_self_arrays() == ["self.a"]


# ---------------------------------------------------------------------------
# Unit evidence and call events
# ---------------------------------------------------------------------------


def test_unit_evidence_of_name():
    assert dataflow.unit_evidence_of_name("timeout_ms") == dataflow.MS
    assert dataflow.unit_evidence_of_name("delay_sec") == dataflow.OTHERUNIT
    assert dataflow.unit_evidence_of_name("timeout") == dataflow.BARETIME
    assert dataflow.unit_evidence_of_name("count") is None


def test_unit_evidence_propagates_through_assignment():
    analysis = analyze(
        "def f(budget_ms):\n"
        "    t = budget_ms\n"
        "    g(t)\n"
    )
    (call,) = analysis.calls
    assert call.pos_facts[0] is not None
    assert dataflow.MS in call.pos_facts[0]


def test_arithmetic_strips_unit_evidence():
    analysis = analyze(
        "def f(budget_ms):\n"
        "    g(budget_ms / 1000.0)\n"
    )
    (call,) = analysis.calls
    assert not call.pos_facts[0] or dataflow.MS not in call.pos_facts[0]


def test_keyword_arguments_are_observed():
    analysis = analyze(
        "def f(budget_ms):\n"
        "    g(limit=budget_ms)\n"
    )
    (call,) = analysis.calls
    assert dataflow.MS in call.kw_facts["limit"]
    assert call.kw_names["limit"] == "budget_ms"
