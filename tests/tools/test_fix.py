"""Autofix tests: stale-noqa surgery, RL010 rewrite, idempotence, behavior."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from tools.reprolint.fix import fix_paths, fixable
from tools.reprolint.project import Project


def codes(violations):
    return [v.code for v in violations]


def write(tmp_path: Path, name: str, source: str) -> Path:
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return target


# ---------------------------------------------------------------------------
# Stale-noqa surgery (RL009)
# ---------------------------------------------------------------------------


def test_fully_stale_comment_is_removed(tmp_path):
    target = write(
        tmp_path, "mod.py", "x = 1  # noqa: RL005 -- stale reason\ny = 2\n"
    )
    outcome = fix_paths([target], root=tmp_path)
    assert outcome.fixes == {str(target): 1}
    assert target.read_text(encoding="utf-8") == "x = 1\ny = 2\n"


def test_partially_stale_comment_keeps_live_codes_and_reason(tmp_path):
    target = write(
        tmp_path,
        "mod.py",
        "def f(timeout):  # noqa: RL003, RL005 -- timeout is seconds here\n"
        "    return timeout\n",
    )
    fix_paths([target], root=tmp_path)
    first_line = target.read_text(encoding="utf-8").splitlines()[0]
    assert first_line == (
        "def f(timeout):  # noqa: RL003 -- timeout is seconds here"
    )


def test_non_rl_codes_survive_surgery(tmp_path):
    target = write(
        tmp_path, "mod.py", "import os  # noqa: F401, RL005 -- keep F401\n"
    )
    fix_paths([target], root=tmp_path)
    assert (
        target.read_text(encoding="utf-8")
        == "import os  # noqa: F401 -- keep F401\n"
    )


def test_missing_reason_is_not_autofixed(tmp_path):
    source = "def f(timeout):  # noqa: RL003\n    return timeout\n"
    target = write(tmp_path, "mod.py", source)
    outcome = fix_paths([target], root=tmp_path)
    assert outcome.fixes == {}
    assert target.read_text(encoding="utf-8") == source
    violations = Project([target], root=tmp_path).lint()
    assert codes(violations) == ["RL009"]
    assert not any(fixable(v) for v in violations)


# ---------------------------------------------------------------------------
# RL010 rewrite
# ---------------------------------------------------------------------------

LEGACY = """\
from repro.experiments.sweeps import load_sweep_series


def series(arrival, metric):
    return load_sweep_series(arrival, [0.2, 0.4], [0.1], metric)
"""


def test_rl010_rewrite_and_import_management(tmp_path):
    target = write(tmp_path, "mod.py", LEGACY)
    fix_paths([target], root=tmp_path)
    fixed = target.read_text(encoding="utf-8")
    assert "load_sweep_series" not in fixed
    assert "sweep_many(FgBgModel(arrival=arrival, " in fixed
    assert "from repro.core import FgBgModel" in fixed
    assert "from repro.experiments.sweeps import sweep_many, utilization_axis" in fixed
    assert "from repro.workloads.paper import SERVICE_RATE_PER_MS" in fixed
    assert Project([target], root=tmp_path).lint() == []


def test_rl010_explicit_service_rate_is_passed_through(tmp_path):
    target = write(
        tmp_path,
        "mod.py",
        "from repro.experiments.sweeps import idle_wait_sweep_series\n"
        "\n"
        "def series(arrival, metric):\n"
        "    return idle_wait_sweep_series(\n"
        "        arrival, [1.0, 2.0], [0.6], metric, service_rate=0.25\n"
        "    )\n",
    )
    fix_paths([target], root=tmp_path)
    fixed = target.read_text(encoding="utf-8")
    assert "service_rate=0.25" in fixed
    assert "SERVICE_RATE_PER_MS" not in fixed
    assert "idle_wait_axis([1.0, 2.0])" in fixed


def test_rl010_keyword_call_shape_is_rewritten(tmp_path):
    target = write(
        tmp_path,
        "mod.py",
        "from repro.experiments.sweeps import load_sweep_series\n"
        "\n"
        "def series(arrival, metric):\n"
        "    return load_sweep_series(\n"
        "        arrival,\n"
        "        utilizations=[0.2],\n"
        "        bg_probabilities=[0.1],\n"
        "        metric=metric,\n"
        "    )\n",
    )
    fix_paths([target], root=tmp_path)
    fixed = target.read_text(encoding="utf-8")
    assert "load_sweep_series" not in fixed
    assert "utilization_axis([0.2])" in fixed


def test_rl010_model_kwargs_shape_is_left_alone(tmp_path):
    source = (
        "from repro.experiments.sweeps import load_sweep_series\n"
        "\n"
        "def series(arrival, metric):\n"
        "    return load_sweep_series(arrival, [0.2], [0.1], metric, bg_buffer=5)\n"
    )
    target = write(tmp_path, "mod.py", source)
    outcome = fix_paths([target], root=tmp_path)
    assert outcome.fixes == {}
    assert target.read_text(encoding="utf-8") == source
    assert codes(Project([target], root=tmp_path).lint()) == ["RL010"]


def test_rl010_waived_call_is_not_rewritten(tmp_path):
    source = (
        "from repro.experiments.sweeps import load_sweep_series\n"
        "\n"
        "def series(arrival, metric):\n"
        "    return load_sweep_series(arrival, [0.2], [0.1], metric)"
        "  # noqa: RL010 -- exercising the deprecated wrapper\n"
    )
    target = write(tmp_path, "mod.py", source)
    outcome = fix_paths([target], root=tmp_path)
    assert outcome.fixes == {}
    assert target.read_text(encoding="utf-8") == source


def test_fix_is_idempotent(tmp_path):
    target = write(tmp_path, "mod.py", LEGACY)
    write(tmp_path, "noqa_mod.py", "x = 1  # noqa: RL005 -- stale\n")
    first = fix_paths([tmp_path], root=tmp_path)
    assert first.total == 2
    snapshot = {
        p.name: p.read_text(encoding="utf-8") for p in tmp_path.glob("*.py")
    }
    second = fix_paths([tmp_path], root=tmp_path)
    assert second.total == 0
    assert snapshot == {
        p.name: p.read_text(encoding="utf-8") for p in tmp_path.glob("*.py")
    }


# ---------------------------------------------------------------------------
# RL013: wrapping an unprotected O_EXCL lock fd in try/finally
# ---------------------------------------------------------------------------

LOCKY = """\
import os


class Locker:
    def __init__(self, root):
        self.root = root
        self.path = root / "q.lock"

    def lock(self, payload, cook):
        fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.write(fd, cook(payload))
        os.close(fd)
        return self.path
"""


def load_module(target: Path) -> dict:
    namespace: dict = {}
    source = target.read_text(encoding="utf-8")
    exec(compile(source, str(target), "exec"), namespace)
    return namespace


def test_rl013_lock_is_wrapped_in_try_finally(tmp_path):
    target = write(tmp_path, "mod.py", LOCKY)
    outcome = fix_paths([target], root=tmp_path)
    assert outcome.fixes == {str(target): 1}
    fixed = target.read_text(encoding="utf-8")
    assert "try:" in fixed and "finally:" in fixed
    assert fixed.index("os.write") < fixed.index("finally:")
    assert [v.code for v in Project([target], root=tmp_path).lint()] == []


def test_rl013_wrap_preserves_happy_path_and_protects_raising_path(tmp_path):
    import os

    import pytest

    target = write(tmp_path, "mod.py", LOCKY)
    fix_paths([target], root=tmp_path)
    locker = load_module(target)["Locker"](tmp_path)

    fds_before = len(os.listdir("/proc/self/fd"))

    def boom(payload):
        raise RuntimeError("disk full")

    with pytest.raises(RuntimeError):
        locker.lock(b"held\n", boom)
    # The finally released the fd even though the body raised.
    assert len(os.listdir("/proc/self/fd")) == fds_before

    # Happy path: O_EXCL still guards, the payload still lands verbatim.
    (tmp_path / "q.lock").unlink()
    path = locker.lock(b"held\n", bytes)
    assert path.read_bytes() == b"held\n"
    with pytest.raises(FileExistsError):
        locker.lock(b"held\n", bytes)


def test_rl013_complex_between_statements_are_left_alone(tmp_path):
    source = (
        "import os\n"
        "\n"
        "class Locker:\n"
        "    def __init__(self, root):\n"
        "        self.path = root / 'q.lock'\n"
        "\n"
        "    def lock(self, verbose):\n"
        "        fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)\n"
        "        if verbose:\n"
        "            print('locking')\n"
        "        os.close(fd)\n"
    )
    target = write(tmp_path, "mod.py", source)
    outcome = fix_paths([target], root=tmp_path)
    assert outcome.fixes == {}
    assert target.read_text(encoding="utf-8") == source
    assert codes(Project([target], root=tmp_path).lint()) == ["RL013"]


def test_rl013_waived_lock_is_not_wrapped(tmp_path):
    source = (
        "import os\n"
        "\n"
        "class Locker:\n"
        "    def __init__(self, root):\n"
        "        self.path = root / 'q.lock'\n"
        "\n"
        "    def lock(self):\n"
        "        fd = os.open(self.path, os.O_CREAT | os.O_EXCL)"
        "  # noqa: RL013 -- fd ownership documented elsewhere\n"
        "        os.write(fd, b'x')\n"
        "        os.close(fd)\n"
    )
    target = write(tmp_path, "mod.py", source)
    outcome = fix_paths([target], root=tmp_path)
    assert outcome.fixes == {}
    assert target.read_text(encoding="utf-8") == source


# ---------------------------------------------------------------------------
# RL015: rewriting literal env reads to the repro._env accessors
# ---------------------------------------------------------------------------

ENVY = """\
import os

_ENV_SHARDS = "REPRO_SWEEP_SHARDS"


def shard_count():
    return int(os.environ.get(_ENV_SHARDS, "1"))


def worker_tag():
    return os.getenv("REPRO_WORKER_TAG", "")


def queue_root():
    return os.environ["REPRO_QUEUE_ROOT"]
"""


def test_rl015_reads_are_rewritten_to_accessors(tmp_path):
    target = write(tmp_path, "mod.py", ENVY)
    outcome = fix_paths([target], root=tmp_path)
    assert outcome.fixes == {str(target): 3}
    fixed = target.read_text(encoding="utf-8")
    assert "from repro._env import repro_env, repro_env_required" in fixed
    assert 'repro_env(_ENV_SHARDS, "1")' in fixed
    assert 'repro_env("REPRO_WORKER_TAG", "")' in fixed
    assert 'repro_env_required("REPRO_QUEUE_ROOT")' in fixed
    assert "os.environ" not in fixed.replace("import os", "")
    assert Project([target], root=tmp_path).lint() == []


def test_rl015_rewrite_preserves_behavior(tmp_path, monkeypatch):
    import pytest

    target = write(tmp_path, "mod.py", ENVY)
    fix_paths([target], root=tmp_path)
    module = load_module(target)

    monkeypatch.setenv("REPRO_SWEEP_SHARDS", "7")
    monkeypatch.setenv("REPRO_WORKER_TAG", "w-3")
    monkeypatch.setenv("REPRO_QUEUE_ROOT", "/tmp/q")
    assert module["shard_count"]() == 7
    assert module["worker_tag"]() == "w-3"
    assert module["queue_root"]() == "/tmp/q"

    monkeypatch.delenv("REPRO_SWEEP_SHARDS")
    monkeypatch.delenv("REPRO_QUEUE_ROOT")
    assert module["shard_count"]() == 1  # default survives the rewrite
    with pytest.raises(KeyError):
        module["queue_root"]()  # required read still raises


def test_rl015_accessor_module_itself_is_not_rewritten(tmp_path):
    accessor = tmp_path / "repro" / "_env.py"
    accessor.parent.mkdir()
    (tmp_path / "repro" / "__init__.py").write_text("", encoding="utf-8")
    source = (
        "import os\n"
        "\n"
        "def repro_env(name, default=None):\n"
        "    return os.environ.get(name, default)\n"
    )
    accessor.write_text(source, encoding="utf-8")
    outcome = fix_paths([tmp_path / "repro"], root=tmp_path)
    assert outcome.fixes == {}
    assert accessor.read_text(encoding="utf-8") == source


def test_rl015_waived_read_is_not_rewritten(tmp_path):
    source = (
        "import os\n"
        "\n"
        "def tag():\n"
        "    return os.getenv('REPRO_TAG')"
        "  # noqa: RL015 -- bootstrap read before repro imports\n"
    )
    target = write(tmp_path, "mod.py", source)
    outcome = fix_paths([target], root=tmp_path)
    assert outcome.fixes == {}
    assert target.read_text(encoding="utf-8") == source


def test_new_fixes_are_idempotent(tmp_path):
    write(tmp_path, "locky.py", LOCKY)
    write(tmp_path, "envy.py", ENVY)
    first = fix_paths([tmp_path], root=tmp_path)
    assert first.total == 4
    snapshot = {
        p.name: p.read_text(encoding="utf-8") for p in tmp_path.glob("*.py")
    }
    second = fix_paths([tmp_path], root=tmp_path)
    assert second.total == 0
    assert snapshot == {
        p.name: p.read_text(encoding="utf-8") for p in tmp_path.glob("*.py")
    }


# ---------------------------------------------------------------------------
# Behavior preservation: the rewrite computes the same series
# ---------------------------------------------------------------------------


def test_rl010_rewrite_preserves_results(tmp_path):
    """The rewritten call computes what the removed wrapper used to.

    ``load_sweep_series`` no longer exists, so the "before" side is its
    documented delegation -- ``sweep_many`` over ``utilization_axis`` of
    a zero-background base model -- computed directly; the rewritten
    legacy source must reproduce it.
    """
    target = write(tmp_path, "mod.py", LEGACY)
    fix_paths([target], root=tmp_path)

    from repro.core import FgBgModel
    from repro.experiments.sweeps import sweep_many, utilization_axis
    from repro.processes import PoissonProcess
    from repro.workloads.paper import SERVICE_RATE_PER_MS

    metric = lambda s: s.fg_queue_length  # noqa: E731 -- mirrors the exec'd call
    before = sweep_many(
        FgBgModel(
            arrival=PoissonProcess(0.01),
            service_rate=SERVICE_RATE_PER_MS,
            bg_probability=0.0,
        ),
        utilization_axis([0.2, 0.4]),
        metric,
        [0.1],
    )

    namespace: dict = {}
    source = target.read_text(encoding="utf-8")
    exec(compile(source, str(target), "exec"), namespace)
    after = namespace["series"](PoissonProcess(0.01), metric)

    assert [s.label for s in before] == [s.label for s in after]
    for old, new in zip(before, after):
        np.testing.assert_allclose(old.x, new.x)
        np.testing.assert_allclose(old.y, new.y)
