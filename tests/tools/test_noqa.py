"""noqa edge cases: anchors, decorators, multi-line spans, odd codes."""

from __future__ import annotations

from tools.reprolint.core import find_noqa, lint_source, noqa_map
from tools.reprolint.project import Project


def codes(violations):
    return [v.code for v in violations]


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def test_lowercase_codes_are_normalised():
    comment = find_noqa("x = 1  # noqa: rl003", 1)
    assert comment is not None
    assert comment.codes == ("RL003",)
    assert comment.suppresses("RL003")


def test_unknown_codes_do_not_suppress_others():
    source = "def f(timeout):  # noqa: RL999\n    return timeout\n"
    assert codes(lint_source(source)) == ["RL003"]


def test_mixed_ruff_and_rl_codes_parse():
    comment = find_noqa("x = call()  # noqa: E501, rl003, F401", 1)
    assert comment is not None
    assert comment.codes == ("E501", "RL003", "F401")
    assert comment.rl_codes == ("RL003",)


def test_reason_trailer_detection():
    with_reason = find_noqa("x  # noqa: RL003 -- legacy API", 1)
    without = find_noqa("x  # noqa: RL003", 1)
    dashes_only = find_noqa("x  # noqa: RL003 --", 1)
    assert with_reason is not None and with_reason.has_reason
    assert without is not None and not without.has_reason
    assert dashes_only is not None and not dashes_only.has_reason


def test_noqa_inside_string_literal_is_not_a_suppression():
    source = 'text = "def f(timeout):  # noqa: RL003"\n'
    assert noqa_map(source) == {}


def test_noqa_map_survives_syntax_errors():
    source = "def broken(:  # noqa: RL000\n"
    comments = noqa_map(source)
    assert 1 in comments
    assert comments[1].codes == ("RL000",)


# ---------------------------------------------------------------------------
# Anchoring across physical lines
# ---------------------------------------------------------------------------


def test_def_line_noqa_suppresses_multiline_signature_param():
    source = (
        "def f(  # noqa: RL003 -- legacy signature kept for callers\n"
        "    timeout,\n"
        "):\n"
        "    return timeout\n"
    )
    assert lint_source(source) == []


def test_noqa_on_wrong_line_of_multiline_signature_does_not_suppress():
    source = (
        "def f(\n"
        "    timeout,\n"
        "):  # noqa: RL003\n"
        "    return timeout\n"
    )
    assert codes(lint_source(source)) == ["RL003"]


def test_decorated_def_anchors_at_def_line_not_decorator():
    suppressed = (
        "@staticmethod\n"
        "def f(  # noqa: RL003 -- decorated, still waived at the def\n"
        "    timeout,\n"
        "):\n"
        "    return timeout\n"
    )
    assert lint_source(suppressed) == []
    on_decorator = (
        "@staticmethod  # noqa: RL003\n"
        "def f(\n"
        "    timeout,\n"
        "):\n"
        "    return timeout\n"
    )
    assert codes(lint_source(on_decorator)) == ["RL003"]


def test_multiline_call_keyword_waivable_at_call_head():
    source = (
        "configure(\n"
        "    timeout=5,\n"
        ")\n"
    )
    assert codes(lint_source(source)) == ["RL003"]
    waived = (
        "configure(  # noqa: RL003 -- third-party API takes seconds\n"
        "    timeout=5,\n"
        ")\n"
    )
    assert lint_source(waived) == []


# ---------------------------------------------------------------------------
# RL009 interaction with the anchors above
# ---------------------------------------------------------------------------


def test_def_line_waiver_of_multiline_signature_is_live_not_stale(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "def f(  # noqa: RL003 -- legacy signature kept for callers\n"
        "    timeout,\n"
        "):\n"
        "    return timeout\n",
        encoding="utf-8",
    )
    assert Project([target], root=tmp_path).lint() == []


def test_unknown_rl_code_is_audited_as_stale(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1  # noqa: RL999 -- typo'd code\n", encoding="utf-8")
    violations = Project([target], root=tmp_path).lint()
    assert codes(violations) == ["RL009"]
    assert "RL999" in violations[0].message
