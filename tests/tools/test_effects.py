"""Effect summaries: local extraction, the freeze oracle, propagation."""

from __future__ import annotations

import ast

from tools.reprolint.effects import extract_defs, freeze_oracle, propagate


def defs_of(source: str):
    return extract_defs(ast.parse(source))


def effects_of(source: str, qualname: str):
    return defs_of(source)[qualname]["effects"]


def node_defs(source: str, module: str = "m"):
    return {
        (module, qualname): record
        for qualname, record in defs_of(source).items()
    }


def same_module_resolve(defs):
    def resolve(module, qualname, call):
        if call["target"][0] == "name":
            node = (module, call["target"][1])
            return node if node in defs else None
        return None

    return resolve


def summaries_of(source: str):
    defs = node_defs(source)
    return propagate(defs, same_module_resolve(defs))


# ---------------------------------------------------------------------------
# Local extraction: what counts as a parameter mutation
# ---------------------------------------------------------------------------


def test_subscript_store_is_a_mutation():
    effects = effects_of("def f(m):\n    m[0, 0] = 1.0\n", "f")
    assert "m" in effects["mutates"]


def test_augmented_assignment_is_a_mutation():
    effects = effects_of("def f(m):\n    m *= 2\n", "f")
    assert "m" in effects["mutates"]


def test_inplace_ndarray_method_is_a_mutation():
    effects = effects_of("def f(m):\n    m.sort()\n", "f")
    assert "m" in effects["mutates"]


def test_setflags_writable_is_a_mutation():
    effects = effects_of("def f(m):\n    m.setflags(write=True)\n", "f")
    assert "m" in effects["mutates"]


def test_setflags_readonly_is_not_a_mutation():
    effects = effects_of("def f(m):\n    m.setflags(write=False)\n", "f")
    assert effects["mutates"] == {}


def test_out_kwarg_is_a_mutation():
    effects = effects_of(
        "import numpy as np\ndef f(m):\n    np.add(m, 1, out=m)\n", "f"
    )
    assert "m" in effects["mutates"]


def test_mutation_through_asarray_alias():
    effects = effects_of(
        "import numpy as np\n"
        "def f(m):\n"
        "    view = np.asarray(m)\n"
        "    view[0] = 1.0\n",
        "f",
    )
    assert "m" in effects["mutates"]


def test_np_array_copies_so_no_mutation():
    effects = effects_of(
        "import numpy as np\n"
        "def f(m):\n"
        "    own = np.array(m)\n"
        "    own[0] = 1.0\n",
        "f",
    )
    assert effects["mutates"] == {}


def test_local_variable_mutation_is_not_a_param_mutation():
    effects = effects_of(
        "def f(n):\n    scratch = [0] * n\n    scratch[0] = 1\n", "f"
    )
    assert effects["mutates"] == {}


# ---------------------------------------------------------------------------
# Local extraction: freezes and the vararg idiom
# ---------------------------------------------------------------------------


def test_unconditional_freeze_is_recorded():
    effects = effects_of("def f(m):\n    m.setflags(write=False)\n", "f")
    assert effects["freezes"] == ["m"]


def test_conditional_freeze_is_not_recorded():
    effects = effects_of(
        "def f(m, flag):\n"
        "    if flag:\n"
        "        m.setflags(write=False)\n",
        "f",
    )
    assert effects["freezes"] == []


def test_vararg_loop_freeze_sets_all_args():
    effects = effects_of(
        "def f(*arrays):\n"
        "    for a in arrays:\n"
        "        a.setflags(write=False)\n",
        "f",
    )
    assert effects["freezes_all_args"] is True


def test_conditional_vararg_loop_does_not_set_all_args():
    effects = effects_of(
        "def f(*arrays):\n"
        "    for a in arrays:\n"
        "        if a.size:\n"
        "            a.setflags(write=False)\n",
        "f",
    )
    assert effects["freezes_all_args"] is False


def test_freeze_oracle_keeps_unconditional_drops_conditional():
    oracle = freeze_oracle(
        ast.parse(
            "def good(m):\n    m.setflags(write=False)\n"
            "def shaky(m, flag):\n"
            "    if flag:\n"
            "        m.setflags(write=False)\n"
        )
    )
    assert "good" in oracle
    assert oracle["good"]["freezes"] == ["m"]
    assert "shaky" not in oracle


# ---------------------------------------------------------------------------
# extract_defs structure
# ---------------------------------------------------------------------------


def test_extract_defs_records_methods_with_qualnames():
    defs = defs_of(
        "class Engine:\n"
        "    def solve(self, x):\n"
        "        return x\n"
        "def free(y):\n"
        "    return y\n"
    )
    assert set(defs) == {"Engine.solve", "free"}
    assert defs["Engine.solve"]["params"] == ["x"]  # self is stripped


def test_extract_defs_records_boolean_effects():
    defs = defs_of(
        "def writer(path, data):\n"
        "    with open(path, 'w') as handle:\n"
        "        handle.write(data)\n"
        "def raiser(x):\n"
        "    raise ValueError(x)\n"
    )
    assert defs["writer"]["effects"]["writes_file"] is True
    assert defs["raiser"]["effects"]["may_raise"] is True
    assert defs["writer"]["effects"]["may_raise"] is False


def test_strong_evidence_requires_validation_not_just_raising():
    defs = defs_of(
        "def checked(x):\n"
        "    validate_shape(x)\n"
        "    return x\n"
        "def raising(x):\n"
        "    if x is None:\n"
        "        raise ValueError('x')\n"
        "    return x\n"
    )
    assert defs["checked"]["effects"]["strong_evidence"] is True
    assert defs["raising"]["effects"]["strong_evidence"] is False


# ---------------------------------------------------------------------------
# Propagation: bottom-up over SCCs
# ---------------------------------------------------------------------------


def test_mutation_propagates_through_positional_binding():
    summaries = summaries_of(
        "def wipe(m):\n    m[0] = 0.0\n"
        "def entry(matrix):\n    wipe(matrix)\n"
    )
    mutates = summaries[("m", "entry")]["mutates"]
    assert "matrix" in mutates
    assert "wipe" in mutates["matrix"]


def test_mutation_propagates_through_keyword_binding():
    summaries = summaries_of(
        "def wipe(a, b):\n    b[0] = 0.0\n"
        "def entry(keep, lose):\n    wipe(a=keep, b=lose)\n"
    )
    mutates = summaries[("m", "entry")]["mutates"]
    assert "lose" in mutates
    assert "keep" not in mutates


def test_mutation_propagates_two_levels_deep():
    summaries = summaries_of(
        "def wipe(m):\n    m[0] = 0.0\n"
        "def mid(m):\n    wipe(m)\n"
        "def top(matrix):\n    mid(matrix)\n"
    )
    assert "matrix" in summaries[("m", "top")]["mutates"]


def test_copying_caller_does_not_inherit_mutation():
    summaries = summaries_of(
        "import numpy as np\n"
        "def wipe(m):\n    m[0] = 0.0\n"
        "def entry(matrix):\n"
        "    own = np.array(matrix)\n"
        "    wipe(own)\n"
    )
    assert summaries[("m", "entry")]["mutates"] == {}


def test_recursive_cycle_reaches_fixpoint_conservatively():
    summaries = summaries_of(
        "def ping(m, n):\n"
        "    if n:\n"
        "        pong(m, n - 1)\n"
        "def pong(m, n):\n"
        "    m[0] = n\n"
        "    if n:\n"
        "        ping(m, n - 1)\n"
    )
    # The direct mutation in pong reaches ping through the cycle, and the
    # fixpoint terminates even though the two keep calling each other.
    assert "m" in summaries[("m", "ping")]["mutates"]
    assert "m" in summaries[("m", "pong")]["mutates"]


def test_boolean_effects_union_through_calls():
    summaries = summaries_of(
        "def sink(path, data):\n"
        "    with open(path, 'w') as handle:\n"
        "        handle.write(data)\n"
        "def entry(path, data):\n"
        "    sink(path, data)\n"
    )
    assert summaries[("m", "entry")]["writes_file"] is True


def test_strong_evidence_stays_local():
    # RL007's one-hop search inspects callee summaries itself; evidence
    # must not flow transitively or a deep helper would launder coverage.
    summaries = summaries_of(
        "def checked(x):\n"
        "    validate_shape(x)\n"
        "    return x\n"
        "def outer(x):\n"
        "    return checked(x)\n"
    )
    assert summaries[("m", "checked")]["strong_evidence"] is True
    assert summaries[("m", "outer")]["strong_evidence"] is False
