"""Property-based tests on the FG/BG model's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BgServiceMode, FgBgModel
from repro.processes import MMPP, PoissonProcess

MU = 1.0

utils = st.floats(min_value=0.02, max_value=0.95)
probs = st.floats(min_value=0.0, max_value=1.0)
buffers = st.integers(min_value=0, max_value=8)
idle_multiples = st.floats(min_value=0.1, max_value=10.0)
modes = st.sampled_from(list(BgServiceMode))


@st.composite
def models(draw):
    util = draw(utils)
    if draw(st.booleans()):
        arrival = PoissonProcess(util * MU)
    else:
        v1 = draw(st.floats(min_value=1e-4, max_value=1.0))
        v2 = draw(st.floats(min_value=1e-4, max_value=1.0))
        l1 = draw(st.floats(min_value=0.1, max_value=5.0))
        l2 = draw(st.floats(min_value=0.0, max_value=0.1))
        arrival = MMPP.two_state(v1=v1, v2=v2, l1=l1, l2=l2).scaled_to_rate(util * MU)
    return FgBgModel(
        arrival=arrival,
        service_rate=MU,
        bg_probability=draw(probs),
        bg_buffer=draw(buffers),
        idle_wait_rate=MU / draw(idle_multiples),
        bg_mode=draw(modes),
    )


class TestModelInvariants:
    @given(models())
    @settings(max_examples=40, deadline=None)
    def test_probability_metrics_in_unit_interval(self, model):
        s = model.solve()
        for name in (
            "fg_delayed_fraction",
            "fg_arrival_delayed_fraction",
            "fg_server_share",
            "bg_server_share",
            "idle_probability",
        ):
            value = getattr(s, name)
            assert -1e-9 <= value <= 1.0 + 1e-9, name
        if not np.isnan(s.bg_completion_rate):
            assert -1e-9 <= s.bg_completion_rate <= 1.0 + 1e-9

    @given(models())
    @settings(max_examples=40, deadline=None)
    def test_flow_conservation(self, model):
        s = model.solve()
        # FG throughput equals arrival rate; BG completions equal admitted.
        assert np.isclose(s.fg_throughput, model.arrival.mean_rate, rtol=1e-6)
        assert np.isclose(
            s.bg_throughput, s.bg_spawn_rate - s.bg_drop_rate, rtol=1e-6, atol=1e-12
        )

    @given(models())
    @settings(max_examples=40, deadline=None)
    def test_time_partition(self, model):
        s = model.solve()
        assert np.isclose(
            s.fg_server_share + s.bg_server_share + s.idle_probability,
            1.0,
            atol=1e-8,
        )

    @given(models())
    @settings(max_examples=40, deadline=None)
    def test_queue_lengths_consistent(self, model):
        s = model.solve()
        assert s.fg_queue_length >= s.fg_server_share - 1e-9
        assert 0 <= s.bg_queue_length <= max(model.bg_buffer, 0) + 1e-9
        # Little's law consistency by construction.
        assert np.isclose(
            s.fg_response_time * model.arrival.mean_rate, s.fg_queue_length, rtol=1e-9
        )

    @given(models())
    @settings(max_examples=30, deadline=None)
    def test_bg_qlen_bounded_by_buffer_unless_spawning(self, model):
        s = model.solve()
        if model.bg_probability == 0:
            assert s.bg_queue_length == 0.0
