"""Property-based tests on arrival processes (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.processes import MMPP, PoissonProcess

rates = st.floats(min_value=1e-4, max_value=1e3, allow_nan=False, allow_infinity=False)
switch_rates = st.floats(min_value=1e-6, max_value=1e2)


@st.composite
def mmpp2s(draw):
    """Random valid 2-state MMPPs (at least one phase produces arrivals)."""
    v1 = draw(switch_rates)
    v2 = draw(switch_rates)
    l1 = draw(rates)
    l2 = draw(st.one_of(st.just(0.0), rates))
    return MMPP.two_state(v1=v1, v2=v2, l1=l1, l2=l2)


class TestMMPPInvariants:
    @given(mmpp2s())
    @settings(max_examples=60, deadline=None)
    def test_generator_rows_sum_to_zero(self, mmpp):
        rows = (mmpp.d0 + mmpp.d1).sum(axis=1)
        assert np.all(np.abs(rows) < 1e-9 * max(1.0, np.abs(mmpp.d0).max()))

    @given(mmpp2s())
    @settings(max_examples=60, deadline=None)
    def test_mean_rate_positive_and_consistent(self, mmpp):
        assert mmpp.mean_rate > 0
        assert np.isclose(mmpp.mean_rate * mmpp.mean_interarrival, 1.0, rtol=1e-6)

    @given(mmpp2s())
    @settings(max_examples=60, deadline=None)
    def test_scv_at_least_one(self, mmpp):
        # MMPPs are doubly stochastic Poisson processes: SCV >= 1 always.
        assert mmpp.scv >= 1.0 - 1e-9

    @given(mmpp2s())
    @settings(max_examples=40, deadline=None)
    def test_acf_bounded_and_nonnegative(self, mmpp):
        acf = mmpp.acf(20)
        assert np.all(acf <= 1.0 + 1e-9)
        # MMPP(2) inter-arrival correlation is non-negative (up to the
        # round-off floor of the linear algebra).
        assert np.all(acf >= -1e-7)

    @given(mmpp2s())
    @settings(max_examples=40, deadline=None)
    def test_acf_decays_geometrically(self, mmpp):
        acf = mmpp.acf(6)
        # Only compare lags whose ACF values sit comfortably above the
        # cancellation floor of the closed-form evaluation (joint moment
        # minus mean^2); fast-decaying processes drop below it within a
        # few lags.
        usable = acf > 1e-7
        if acf[0] > 1e-4 and np.sum(usable) >= 2:
            k = int(np.argmin(usable)) if not usable.all() else len(acf)
            ratios = acf[1:k] / acf[: k - 1]
            assert np.all(np.abs(ratios - ratios[0]) < 1e-4 + 1e-2 * np.abs(ratios[0]))

    @given(mmpp2s(), st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_scaling_invariants(self, mmpp, factor):
        scaled = mmpp.scaled_by(factor)
        assert np.isclose(scaled.mean_rate, factor * mmpp.mean_rate, rtol=1e-9)
        assert np.isclose(scaled.scv, mmpp.scv, rtol=1e-6)
        np.testing.assert_allclose(scaled.acf(5), mmpp.acf(5), atol=1e-8)

    @given(mmpp2s())
    @settings(max_examples=40, deadline=None)
    def test_embedded_stationary_is_distribution(self, mmpp):
        pi_e = mmpp.embedded_stationary
        assert np.all(pi_e >= -1e-12)
        assert np.isclose(pi_e.sum(), 1.0, atol=1e-9)


class TestPoissonInvariants:
    @given(rates)
    @settings(max_examples=40, deadline=None)
    def test_poisson_memorylessness_descriptors(self, rate):
        p = PoissonProcess(rate)
        assert np.isclose(p.scv, 1.0, atol=1e-9)
        assert np.all(np.abs(p.acf(10)) < 1e-9)

    @given(rates, rates)
    @settings(max_examples=40, deadline=None)
    def test_superposition_adds_rates(self, r1, r2):
        s = PoissonProcess(r1).superpose(PoissonProcess(r2))
        assert np.isclose(s.mean_rate, r1 + r2, rtol=1e-9)
