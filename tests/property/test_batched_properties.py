"""Property-based tests: batched kernel == sequential solver.

Random stable MMPP(2) FG/BG models (lag-1 ACF decay <= 0.9), solved both
through ``model.solve()`` and through the stacked kernel; every published
metric must agree within 1e-10 -- including the deliberate NaN
``bg_completion_rate`` of models below ``NEAR_ZERO_BG_PROBABILITY``,
which build their chain without background states and therefore exercise
the kernel's shape grouping.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import FgBgModel, solve_models_batched
from repro.core.metrics import NEAR_ZERO_BG_PROBABILITY
from repro.processes import MMPP
from repro.workloads.paper import SERVICE_RATE_PER_MS

MU = SERVICE_RATE_PER_MS


@st.composite
def stable_mmpp_models(draw, bg_probability=None):
    """Random stable FG/BG models with MMPP(2) arrivals, decay <= 0.9.

    Built directly from random switching/arrival rates (the least-squares
    fitter is too slow -- and not total -- for property tests)."""
    v1 = draw(st.floats(min_value=0.01, max_value=1.0))
    v2 = draw(st.floats(min_value=0.01, max_value=1.0))
    l1 = draw(st.floats(min_value=0.5, max_value=5.0))
    l2 = draw(st.floats(min_value=0.01, max_value=0.4))
    util = draw(st.floats(min_value=0.05, max_value=0.7))
    if bg_probability is None:
        # Either exactly zero (the no-background-states shape) or a
        # numerically meaningful probability.  The grey zone just above
        # NEAR_ZERO_BG_PROBABILITY builds the background states but every
        # BG metric is O(p) cancellation noise, where two correct solvers
        # legitimately differ beyond 1e-10 relative.
        bg_probability = draw(
            st.one_of(
                st.just(0.0), st.floats(min_value=1e-6, max_value=1.0)
            )
        )
    mmpp = MMPP.two_state(v1, v2, l1, l2)
    acf = mmpp.acf(2)
    assume(abs(acf[0]) > 1e-12)
    assume(0.0 < acf[1] / acf[0] <= 0.9)
    arrival = mmpp.scaled_to_utilization(util, MU)
    return FgBgModel(
        arrival=arrival, service_rate=MU, bg_probability=bg_probability
    )


def assert_solutions_agree(sequential, batched):
    for name, seq_value in sequential.as_dict().items():
        bat_value = getattr(batched, name)
        if np.isnan(seq_value):
            assert np.isnan(bat_value)
        else:
            np.testing.assert_allclose(
                bat_value, seq_value, atol=1e-10, rtol=1e-10
            )


class TestBatchedEqualsSequential:
    @given(model=stable_mmpp_models())
    @settings(max_examples=25, deadline=None)
    def test_single_model(self, model):
        (batched,) = solve_models_batched([model])
        assert_solutions_agree(model.solve(), batched)

    @given(
        model=stable_mmpp_models(),
        utils=st.lists(
            st.floats(min_value=0.05, max_value=0.9),
            min_size=2,
            max_size=5,
            unique=True,
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_sweep_axis(self, model, utils):
        models = [model.at_utilization(u) for u in utils]
        batched = solve_models_batched(models)
        for m, b in zip(models, batched):
            assert_solutions_agree(m.solve(), b)

    @given(model=stable_mmpp_models(bg_probability=0.0))
    @settings(max_examples=10, deadline=None)
    def test_near_zero_bg_probability_is_nan(self, model):
        assert model.bg_probability < NEAR_ZERO_BG_PROBABILITY
        (batched,) = solve_models_batched([model])
        assert np.isnan(batched.bg_completion_rate)
        assert_solutions_agree(model.solve(), batched)

    @given(model=stable_mmpp_models())
    @settings(max_examples=10, deadline=None)
    def test_mixed_shape_batch(self, model):
        # p = 0 and p > 0 models have different block shapes; the
        # model-level wrapper must group them and keep input order.
        models = [
            model.with_bg_probability(0.0),
            model.with_bg_probability(max(model.bg_probability, 0.1)),
        ]
        batched = solve_models_batched(models)
        assert np.isnan(batched[0].bg_completion_rate)
        for m, b in zip(models, batched):
            assert_solutions_agree(m.solve(), b)
