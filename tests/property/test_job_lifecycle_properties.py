"""Property-based tests of the job lifecycle state machine.

Hypothesis drives random sequences of lifecycle operations against a
:class:`~repro.jobs.Job`; at every step the reached state must be one
the transition table :data:`~repro.jobs.TRANSITIONS` allows from the
previous state, illegal operations must raise
:class:`~repro.jobs.InvalidTransition` and leave the job unchanged
(frozen aggregates cannot be half-transitioned), and the bookkeeping
invariants (retry bound, terminal-implies-finished) must hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.jobs import (
    COMPLETED,
    FAILED,
    PENDING,
    QUARANTINED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    InvalidTransition,
    Job,
    JobSpec,
)

#: Each operation: (name, target state it transitions to or None for a
#: non-transition mutation, callable).
OPERATIONS = (
    ("claim", RUNNING, lambda j, t: j.claimed("w@h", t)),
    ("progress", None, lambda j, t: j.progressed(1, t)),
    ("heartbeat", None, lambda j, t: j.heartbeat(t)),
    ("complete", COMPLETED, lambda j, t: j.completed("result", t)),
    ("fail", FAILED, lambda j, t: j.failed("error", t)),
    ("cancel", None, lambda j, t: j.cancelled(t)),
    ("requeue", PENDING, lambda j, t: j.requeued(t)),
    ("quarantine", QUARANTINED, lambda j, t: j.quarantined(t)),
    ("release", PENDING, lambda j, t: j.released(t)),
    ("request_cancel", None, lambda j, t: j.cancel_requested_now(t)),
)


def fresh(max_retries: int) -> Job:
    return Job.new(
        JobSpec(figure="fig2"), now_ms=0.0, max_retries=max_retries
    )


@given(
    ops=st.lists(st.sampled_from(OPERATIONS), min_size=1, max_size=12),
    max_retries=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=200, deadline=None)
def test_every_reachable_state_is_legal(ops, max_retries):
    job = fresh(max_retries)
    clock_ms = 0.0
    for _name, _target, apply in ops:
        clock_ms += 1.0
        before = job
        try:
            job = apply(job, clock_ms)
        except InvalidTransition:
            # An illegal operation must be a no-op on the aggregate.
            assert job == before
            continue

        # Whatever happened was a legal step of the machine.
        assert job.state in STATES
        if job.state != before.state:
            assert job.state in TRANSITIONS[before.state], (
                f"illegal transition {before.state} -> {job.state} slipped through"
            )

        # Bookkeeping invariants.
        assert job.retries <= job.max_retries
        assert job.points_done >= 0
        if job.state in TERMINAL_STATES:
            assert job.finished_ms is not None
        if job.state == RUNNING:
            assert job.worker_id is not None


@given(
    ops=st.lists(st.sampled_from(OPERATIONS), min_size=1, max_size=12),
)
@settings(max_examples=200, deadline=None)
def test_terminal_states_are_inescapable(ops):
    """Once terminal, every further operation raises InvalidTransition."""
    job = fresh(3).claimed("w@h", 1.0).completed("done", 2.0)
    for _name, _target, apply in ops:
        with pytest.raises(InvalidTransition):
            apply(job, 3.0)


@given(budget=st.integers(min_value=0, max_value=4))
@settings(max_examples=20, deadline=None)
def test_requeue_cycles_are_bounded_by_the_budget(budget):
    job = fresh(budget)
    clock_ms = 0.0
    for _ in range(budget):
        clock_ms += 1.0
        job = job.claimed("w@h", clock_ms).requeued(clock_ms + 0.5)
    assert job.retries == budget
    job = job.claimed("w@h", clock_ms + 1.0)
    with pytest.raises(InvalidTransition, match="requeue budget exhausted"):
        job.requeued(clock_ms + 2.0)
