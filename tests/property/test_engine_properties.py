"""Property-based tests on the sweep engine (caching and warm starts)."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import FgBgModel
from repro.engine import SolveCache, SweepEngine
from repro.processes import MMPP
from repro.workloads.paper import SERVICE_RATE_PER_MS

MU = SERVICE_RATE_PER_MS


@st.composite
def stable_mmpp_models(draw):
    """Random stable FG/BG models with MMPP(2) arrivals, lag-1 ACF decay
    <= 0.9 so the warm-start comparisons are not tail-dominated.

    The MMPP is built directly from random switching/arrival rates (the
    least-squares fitter is too slow -- and not total -- for property
    tests) and rescaled to the drawn utilization, which preserves the
    decay."""
    v1 = draw(st.floats(min_value=0.01, max_value=1.0))
    v2 = draw(st.floats(min_value=0.01, max_value=1.0))
    l1 = draw(st.floats(min_value=0.5, max_value=5.0))
    l2 = draw(st.floats(min_value=0.01, max_value=0.4))
    util = draw(st.floats(min_value=0.05, max_value=0.7))
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    mmpp = MMPP.two_state(v1, v2, l1, l2)
    acf = mmpp.acf(2)
    assume(abs(acf[0]) > 1e-12)
    assume(0.0 < acf[1] / acf[0] <= 0.9)
    arrival = mmpp.scaled_to_utilization(util, MU)
    return FgBgModel(arrival=arrival, service_rate=MU, bg_probability=p)


class TestCachingProperties:
    @given(model=stable_mmpp_models())
    @settings(max_examples=25, deadline=None)
    def test_cached_solve_equals_fresh_solve_exactly(self, model):
        engine = SweepEngine(cache=SolveCache())
        fresh = engine.solve(model)
        cached = engine.solve(model)
        assert cached is fresh
        for name, value in fresh.as_dict().items():
            again = getattr(cached, name)
            assert (value == again) or (np.isnan(value) and np.isnan(again))

    @given(model=stable_mmpp_models())
    @settings(max_examples=25, deadline=None)
    def test_rebuilt_model_hits_cache(self, model):
        # A structurally identical model built from the same parameters
        # must share the fingerprint and therefore the cache entry.
        engine = SweepEngine(cache=SolveCache())
        engine.solve(model)
        clone = FgBgModel(
            arrival=model.arrival,
            service_rate=model.service_rate,
            bg_probability=model.bg_probability,
            bg_buffer=model.bg_buffer,
            idle_wait_rate=model.idle_wait_rate,
            bg_mode=model.bg_mode,
        )
        engine.solve(clone)
        assert engine.stats.cache_hits == 1


class TestWarmStartProperties:
    @given(
        model=stable_mmpp_models(),
        step=st.floats(min_value=0.01, max_value=0.1),
    )
    @settings(max_examples=25, deadline=None)
    def test_warm_equals_cold_within_tolerance(self, model, step):
        low = model
        high_util = min(0.95, low.fg_utilization + step)
        high = low.at_utilization(high_util)

        cold = high.solve()
        seed = low.solve().qbd_solution.r
        warm = high.solve(initial_r=seed)

        for name, c_val in cold.as_dict().items():
            w_val = getattr(warm, name)
            if np.isnan(c_val):
                assert np.isnan(w_val)
            else:
                np.testing.assert_allclose(w_val, c_val, atol=1e-7, rtol=1e-7)

    @given(model=stable_mmpp_models())
    @settings(max_examples=15, deadline=None)
    def test_warm_chain_matches_cold_chain(self, model):
        utils = [0.2, 0.3, 0.4]
        models = [model.at_utilization(u) for u in utils]
        cold = [m.solve().fg_queue_length for m in models]
        warm = [
            s.fg_queue_length
            for s in SweepEngine(warm_start=True).run_chain(models)
        ]
        np.testing.assert_allclose(warm, cold, atol=1e-7, rtol=1e-7)
