"""Property-based tests of job-store optimistic concurrency.

Two layers, both run against every backend:

* Hypothesis drives randomly *interleaved* ``update()`` calls from a
  cast of writers, some holding the current record and some holding
  stale copies: an update must be accepted exactly when the writer's
  copy carries the stored version, the version counter must advance by
  exactly one per accepted write and never regress, and a rejected
  writer must leave the stored record untouched.

* A real ``multiprocessing`` stampede hammers one job with concurrent
  read-modify-update rounds through the durable backends: no update may
  be lost (the final progress counter equals the number of accepted
  writes), which is the lost-update freedom the sweep/worker/zombie
  machinery is built on.
"""

import multiprocessing
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.jobs import Job, JobSpec, StaleJobError
from repro.jobs.repository import (
    FileJobRepository,
    MemoryJobRepository,
    SqliteJobRepository,
)

BACKENDS = ("memory", "file", "sqlite")


def make_repo(backend: str, root: Path):
    if backend == "memory":
        return MemoryJobRepository()
    if backend == "file":
        return FileJobRepository(root / "q")
    return SqliteJobRepository(root / "q")


def running_job(repo) -> Job:
    repo.submit(Job.new(JobSpec(figure="fig2"), now_ms=1_000.0))
    return repo.claim("w@h", 1_500.0)


#: One interleaving step: which writer acts, and whether it refreshes
#: its copy from the store first (a writer that does not refresh is
#: acting on a stale snapshot whenever someone else wrote in between).
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), st.booleans()),
    min_size=1,
    max_size=25,
)


@pytest.mark.parametrize("backend", BACKENDS)
@given(schedule=steps)
@settings(max_examples=30, deadline=None)
def test_update_accepts_exactly_the_current_version(backend, schedule):
    with tempfile.TemporaryDirectory() as td:
        repo = make_repo(backend, Path(td))
        try:
            job = running_job(repo)
            copies = {w: job for w in range(4)}  # every writer starts current
            clock_ms = 2_000.0
            for writer, refresh in schedule:
                clock_ms += 1.0
                stored_before = repo.get(job.job_id)
                if refresh:
                    copies[writer] = stored_before
                copy = copies[writer]
                was_current = copy.version == stored_before.version
                try:
                    accepted = repo.update(copy.progressed(1, clock_ms))
                except StaleJobError:
                    # Rejections happen exactly on stale copies, and the
                    # stored record is untouched by the attempt.
                    assert not was_current
                    assert repo.get(job.job_id) == stored_before
                else:
                    assert was_current
                    assert accepted.version == stored_before.version + 1
                    assert accepted.points_done == copy.points_done + 1
                    copies[writer] = accepted
                # The counter never regresses, with or without a win.
                assert repo.get(job.job_id).version >= stored_before.version
        finally:
            repo.close()


@pytest.mark.parametrize("backend", BACKENDS)
@given(winner=st.integers(min_value=0, max_value=3))
@settings(max_examples=10, deadline=None)
def test_exactly_one_writer_wins_each_round(backend, winner):
    """All writers hold the same version; whoever goes first wins, every
    other contender is rejected -- no silent last-writer-wins."""
    with tempfile.TemporaryDirectory() as td:
        repo = make_repo(backend, Path(td))
        try:
            job = running_job(repo)
            order = [winner] + [w for w in range(4) if w != winner]
            outcomes = []
            for w in order:
                try:
                    repo.update(job.progressed(w + 1, 2_000.0))
                    outcomes.append(w)
                except StaleJobError:
                    pass
            assert outcomes == [winner]
            assert repo.get(job.job_id).points_done == winner + 1
        finally:
            repo.close()


# ----------------------------------------------------------------------
# Real processes, real contention
# ----------------------------------------------------------------------


def _stampede(args) -> int:
    """One contender process: ``rounds`` read-modify-update cycles."""
    backend, root, job_id, rounds = args
    repo = (
        FileJobRepository(root)
        if backend == "file"
        else SqliteJobRepository(root)
    )
    accepted = 0
    try:
        for _ in range(rounds):
            while True:
                current = repo.get(job_id)
                evolved = current.progressed(1, 2_000.0)
                try:
                    repo.update(evolved)
                except StaleJobError:
                    continue  # somebody else won the round; retry on fresh
                accepted += 1
                break
    finally:
        repo.close()
    return accepted


@pytest.mark.parametrize("backend", ("file", "sqlite"))
def test_no_update_is_lost_under_process_contention(backend, tmp_path):
    root = tmp_path / "q"
    repo = (
        FileJobRepository(root)
        if backend == "file"
        else SqliteJobRepository(root)
    )
    running = running_job(repo)
    processes, rounds = 4, 12
    with multiprocessing.Pool(processes) as pool:
        wins = pool.map(
            _stampede,
            [(backend, root, running.job_id, rounds)] * processes,
        )
    final = repo.get(running.job_id)
    repo.close()
    assert wins == [rounds] * processes
    # Every accepted write advanced the counter by exactly one: none
    # were lost, none double-counted.
    assert final.points_done == processes * rounds
    assert final.version == running.version + processes * rounds
