"""Property-based tests on the QBD solver and stationary solvers."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.markov import stationary_distribution_dense, stationary_distribution_gth
from repro.qbd import QBDProcess, drift, r_matrix, solve_qbd

rate_floats = st.floats(min_value=0.01, max_value=10.0)


@st.composite
def random_generators(draw):
    """Random irreducible CTMC generators of order 2..6."""
    n = draw(st.integers(min_value=2, max_value=6))
    q = draw(
        arrays(
            float,
            (n, n),
            elements=st.floats(min_value=0.01, max_value=5.0),
        )
    )
    np.fill_diagonal(q, 0.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


@st.composite
def stable_qbds(draw):
    """Random stable QBDs built from an MMPP-like phase process."""
    n = draw(st.integers(min_value=1, max_value=3))
    mu = draw(st.floats(min_value=0.5, max_value=5.0))
    util = draw(st.floats(min_value=0.05, max_value=0.9))
    if n == 1:
        d0 = np.array([[-util * mu]])
        d1 = np.array([[util * mu]])
    else:
        gen = draw(
            arrays(float, (n, n), elements=st.floats(min_value=0.01, max_value=2.0))
        )
        np.fill_diagonal(gen, 0.0)
        rates = draw(
            arrays(float, (n,), elements=st.floats(min_value=0.01, max_value=2.0))
        )
        # Rescale to the requested utilization.
        from repro.markov import stationary_distribution

        full = gen.copy()
        np.fill_diagonal(full, -gen.sum(axis=1))
        pi = stationary_distribution(full)
        lam = float(pi @ rates)
        rates = rates * (util * mu / lam)
        d1 = np.diag(rates)
        d0 = full - d1
    a0 = d1
    a1 = d0 - mu * np.eye(n)
    a2 = mu * np.eye(n)
    return QBDProcess.homogeneous(a0, a1, a2)


class TestStationarySolvers:
    @given(random_generators())
    @settings(max_examples=50, deadline=None)
    def test_gth_and_dense_agree(self, q):
        gth = stationary_distribution_gth(q)
        dense = stationary_distribution_dense(q)
        np.testing.assert_allclose(gth, dense, atol=1e-8)

    @given(random_generators())
    @settings(max_examples=50, deadline=None)
    def test_stationary_is_distribution_solving_balance(self, q):
        pi = stationary_distribution_gth(q)
        assert np.all(pi >= 0)
        assert np.isclose(pi.sum(), 1.0, atol=1e-10)
        np.testing.assert_allclose(pi @ q, 0.0, atol=1e-8 * max(1.0, np.abs(q).max()))


class TestQBDInvariants:
    @given(stable_qbds())
    @settings(max_examples=30, deadline=None)
    def test_r_spectral_radius_below_one_iff_stable(self, qbd):
        assume(drift(qbd.a0, qbd.a1, qbd.a2) < -1e-6)
        r = r_matrix(qbd.a0, qbd.a1, qbd.a2)
        assert np.max(np.abs(np.linalg.eigvals(r))) < 1.0
        assert np.all(r >= 0)

    @given(stable_qbds())
    @settings(max_examples=25, deadline=None)
    def test_solution_is_normalized_distribution(self, qbd):
        assume(drift(qbd.a0, qbd.a1, qbd.a2) < -1e-6)
        sol = solve_qbd(qbd)
        assert np.all(sol.boundary >= -1e-12)
        assert np.all(sol.level(1) >= -1e-12)
        assert np.isclose(sol.total_mass, 1.0, atol=1e-8)

    @given(stable_qbds())
    @settings(max_examples=25, deadline=None)
    def test_balance_residual_small(self, qbd):
        assume(drift(qbd.a0, qbd.a1, qbd.a2) < -1e-6)
        sol = solve_qbd(qbd)
        assert sol.residual(levels=4) < 1e-8

    @given(stable_qbds())
    @settings(max_examples=20, deadline=None)
    def test_mg1_solver_agrees_on_qbds(self, qbd):
        """Every QBD is an M/G/1-type chain; the two solvers must agree."""
        from repro.qbd.mg1 import MG1Process, solve_mg1

        assume(drift(qbd.a0, qbd.a1, qbd.a2) < -1e-4)
        mg1 = MG1Process(
            boundary_blocks=(qbd.b00, qbd.b01),
            down_block=qbd.b10,
            repeating_blocks=(qbd.a2, qbd.a1, qbd.a0),
        )
        qbd_sol = solve_qbd(qbd)
        mg1_sol = solve_mg1(mg1)
        np.testing.assert_allclose(mg1_sol.boundary, qbd_sol.boundary, atol=1e-8)
        for k in range(1, 5):
            np.testing.assert_allclose(
                mg1_sol.level(k), qbd_sol.level(k), atol=1e-8
            )

    @given(stable_qbds())
    @settings(max_examples=25, deadline=None)
    def test_level_masses_decrease_geometrically_in_the_tail(self, qbd):
        """Geometric tail decay, asserted through theorems only.

        Plain monotonicity of the scalar level masses is *not* a theorem:
        ``sp(R) < 1`` bounds the asymptotic rate, but a non-normal ``R``
        with a row sum above one produces transient growth (hypothesis
        found such a QBD: near-decomposable phases with one slow class).
        What positive recurrence does guarantee -- and what is checked
        here -- is ``sp(R) < 1``, agreement of the closed-form tail
        (the ``(I-R)^{-1}`` LU path) with directly accumulated
        matrix-geometric levels (the ``pi_1 R^{k-1}`` power path), and a
        deep tail that has decayed to nothing.
        """
        assume(drift(qbd.a0, qbd.a1, qbd.a2) < -1e-6)
        sol = solve_qbd(qbd)
        rho = float(np.max(np.abs(np.linalg.eigvals(sol.r))))
        assert rho < 1.0 - 1e-12  # positive recurrence <=> sp(R) < 1
        assume(rho < 0.99)  # keep the summation window bounded
        depth = int(np.ceil(np.log(1e-12) / np.log(max(rho, 0.1))))
        t3 = float(sol.tail_mass(3).sum())
        t_deep = float(sol.tail_mass(3 + depth).sum())
        partial = sum(
            float(sol.level(k).sum()) for k in range(3, 3 + depth)
        )
        # Geometric series identity: the summed levels are exactly the
        # difference of the two closed-form tails.
        np.testing.assert_allclose(
            partial + t_deep, t3, rtol=1e-8, atol=1e-12
        )
        # ... and rho**depth = 1e-12 has crushed the deep tail (1e8 of
        # slack for transient non-normal growth).
        assert t_deep <= 1e-4 * max(t3, 1e-12) + 1e-12
