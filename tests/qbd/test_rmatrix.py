"""Tests for R/G matrix algorithms."""

import numpy as np
import pytest

from repro.qbd import (
    drift,
    g_matrix_logarithmic_reduction,
    is_stable,
    r_matrix,
    r_matrix_from_g,
    r_matrix_functional_iteration,
    r_matrix_logarithmic_reduction,
    r_matrix_natural_iteration,
)

LAM, MU = 1.0, 2.0
MM1 = (np.array([[LAM]]), np.array([[-(LAM + MU)]]), np.array([[MU]]))


def mmpp_m1_blocks(util: float = 0.7, mu: float = 1.0):
    """Repeating blocks of an MMPP(2)/M/1 queue at the given utilization."""
    from repro.processes import fit_mmpp2

    mmpp = fit_mmpp2(rate=util * mu, scv=2.4, decay=0.98)
    d0, d1 = mmpp.d0, mmpp.d1
    a0 = d1
    a1 = d0 - mu * np.eye(2)
    a2 = mu * np.eye(2)
    return a0, a1, a2


class TestDriftAndStability:
    def test_mm1_drift_is_lambda_minus_mu(self):
        assert drift(*MM1) == pytest.approx(LAM - MU)

    def test_stable_mm1(self):
        assert is_stable(*MM1)

    def test_unstable_when_lam_exceeds_mu(self):
        a0, a1, a2 = np.array([[3.0]]), np.array([[-5.0]]), np.array([[2.0]])
        assert not is_stable(a0, a1, a2)

    def test_mmpp_drift_matches_rates(self):
        a0, a1, a2 = mmpp_m1_blocks(util=0.7)
        assert drift(a0, a1, a2) == pytest.approx(0.7 - 1.0, rel=1e-6)


ALGOS = [
    r_matrix_functional_iteration,
    r_matrix_natural_iteration,
    r_matrix_logarithmic_reduction,
]


@pytest.mark.parametrize("algo", ALGOS)
class TestRAlgorithms:
    def test_mm1_r_is_rho(self, algo):
        r = algo(*MM1)
        np.testing.assert_allclose(r, [[LAM / MU]], atol=1e-10)

    def test_r_solves_quadratic(self, algo):
        a0, a1, a2 = mmpp_m1_blocks()
        r = algo(a0, a1, a2)
        residual = a0 + r @ a1 + r @ r @ a2
        np.testing.assert_allclose(residual, 0.0, atol=1e-8)

    def test_r_nonnegative_with_subunit_spectral_radius(self, algo):
        a0, a1, a2 = mmpp_m1_blocks()
        r = algo(a0, a1, a2)
        assert np.all(r >= -1e-12)
        assert np.max(np.abs(np.linalg.eigvals(r))) < 1.0


class TestAgreement:
    def test_all_algorithms_agree(self):
        a0, a1, a2 = mmpp_m1_blocks(util=0.85)
        results = [algo(a0, a1, a2) for algo in ALGOS]
        for other in results[1:]:
            np.testing.assert_allclose(results[0], other, atol=1e-8)

    def test_dispatch_by_name(self):
        a0, a1, a2 = mmpp_m1_blocks()
        for name in ("logarithmic-reduction", "natural", "functional"):
            r = r_matrix(a0, a1, a2, algorithm=name)
            np.testing.assert_allclose(
                a0 + r @ a1 + r @ r @ a2, 0.0, atol=1e-8
            )

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            r_matrix(*MM1, algorithm="magic")

    def test_unstable_raises(self):
        a0, a1, a2 = np.array([[3.0]]), np.array([[-5.0]]), np.array([[2.0]])
        with pytest.raises(ValueError, match="not positive recurrent"):
            r_matrix(a0, a1, a2)


class TestGMatrix:
    def test_g_is_stochastic_for_recurrent_qbd(self):
        a0, a1, a2 = mmpp_m1_blocks()
        g = g_matrix_logarithmic_reduction(a0, a1, a2)
        np.testing.assert_allclose(g.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(g >= -1e-12)

    def test_g_solves_quadratic(self):
        a0, a1, a2 = mmpp_m1_blocks()
        g = g_matrix_logarithmic_reduction(a0, a1, a2)
        residual = a2 + a1 @ g + a0 @ g @ g
        np.testing.assert_allclose(residual, 0.0, atol=1e-9)

    def test_r_from_g_equals_direct(self):
        a0, a1, a2 = mmpp_m1_blocks()
        g = g_matrix_logarithmic_reduction(a0, a1, a2)
        np.testing.assert_allclose(
            r_matrix_from_g(a0, a1, a2, g),
            r_matrix_functional_iteration(a0, a1, a2),
            atol=1e-8,
        )
