"""Tests for R/G matrix algorithms."""

import numpy as np
import pytest

from repro.qbd import (
    SolveStats,
    drift,
    g_matrix_logarithmic_reduction,
    is_stable,
    r_matrix,
    r_matrix_from_g,
    r_matrix_functional_iteration,
    r_matrix_logarithmic_reduction,
    r_matrix_natural_iteration,
    r_matrix_newton,
)

LAM, MU = 1.0, 2.0
MM1 = (np.array([[LAM]]), np.array([[-(LAM + MU)]]), np.array([[MU]]))


def mmpp_m1_blocks(util: float = 0.7, mu: float = 1.0):
    """Repeating blocks of an MMPP(2)/M/1 queue at the given utilization."""
    from repro.processes import fit_mmpp2

    mmpp = fit_mmpp2(rate=util * mu, scv=2.4, decay=0.98)
    d0, d1 = mmpp.d0, mmpp.d1
    a0 = d1
    a1 = d0 - mu * np.eye(2)
    a2 = mu * np.eye(2)
    return a0, a1, a2


class TestDriftAndStability:
    def test_mm1_drift_is_lambda_minus_mu(self):
        assert drift(*MM1) == pytest.approx(LAM - MU)

    def test_stable_mm1(self):
        assert is_stable(*MM1)

    def test_unstable_when_lam_exceeds_mu(self):
        a0, a1, a2 = np.array([[3.0]]), np.array([[-5.0]]), np.array([[2.0]])
        assert not is_stable(a0, a1, a2)

    def test_mmpp_drift_matches_rates(self):
        a0, a1, a2 = mmpp_m1_blocks(util=0.7)
        assert drift(a0, a1, a2) == pytest.approx(0.7 - 1.0, rel=1e-6)


ALGOS = [
    r_matrix_functional_iteration,
    r_matrix_natural_iteration,
    r_matrix_logarithmic_reduction,
    r_matrix_newton,
]


@pytest.mark.parametrize("algo", ALGOS)
class TestRAlgorithms:
    def test_mm1_r_is_rho(self, algo):
        r = algo(*MM1)
        np.testing.assert_allclose(r, [[LAM / MU]], atol=1e-10)

    def test_r_solves_quadratic(self, algo):
        a0, a1, a2 = mmpp_m1_blocks()
        r = algo(a0, a1, a2)
        residual = a0 + r @ a1 + r @ r @ a2
        np.testing.assert_allclose(residual, 0.0, atol=1e-8)

    def test_r_nonnegative_with_subunit_spectral_radius(self, algo):
        a0, a1, a2 = mmpp_m1_blocks()
        r = algo(a0, a1, a2)
        assert np.all(r >= -1e-12)
        assert np.max(np.abs(np.linalg.eigvals(r))) < 1.0


class TestAgreement:
    def test_all_algorithms_agree(self):
        a0, a1, a2 = mmpp_m1_blocks(util=0.85)
        results = [algo(a0, a1, a2) for algo in ALGOS]
        for other in results[1:]:
            np.testing.assert_allclose(results[0], other, atol=1e-8)

    def test_dispatch_by_name(self):
        a0, a1, a2 = mmpp_m1_blocks()
        for name in ("logarithmic-reduction", "natural", "functional", "newton"):
            r = r_matrix(a0, a1, a2, algorithm=name)
            np.testing.assert_allclose(
                a0 + r @ a1 + r @ r @ a2, 0.0, atol=1e-8
            )

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            r_matrix(*MM1, algorithm="magic")

    def test_unstable_raises(self):
        a0, a1, a2 = np.array([[3.0]]), np.array([[-5.0]]), np.array([[2.0]])
        with pytest.raises(ValueError, match="not positive recurrent"):
            r_matrix(a0, a1, a2)


class TestGMatrix:
    def test_g_is_stochastic_for_recurrent_qbd(self):
        a0, a1, a2 = mmpp_m1_blocks()
        g = g_matrix_logarithmic_reduction(a0, a1, a2)
        np.testing.assert_allclose(g.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(g >= -1e-12)

    def test_g_solves_quadratic(self):
        a0, a1, a2 = mmpp_m1_blocks()
        g = g_matrix_logarithmic_reduction(a0, a1, a2)
        residual = a2 + a1 @ g + a0 @ g @ g
        np.testing.assert_allclose(residual, 0.0, atol=1e-9)

    def test_r_from_g_equals_direct(self):
        a0, a1, a2 = mmpp_m1_blocks()
        g = g_matrix_logarithmic_reduction(a0, a1, a2)
        np.testing.assert_allclose(
            r_matrix_from_g(a0, a1, a2, g),
            r_matrix_functional_iteration(a0, a1, a2),
            atol=1e-8,
        )


class TestSolveStats:
    def test_return_stats(self):
        a0, a1, a2 = mmpp_m1_blocks()
        r, stats = r_matrix(a0, a1, a2, return_stats=True)
        assert isinstance(stats, SolveStats)
        assert stats.algorithm == "logarithmic-reduction"
        assert stats.iterations > 0
        assert stats.wall_time_ms >= 0.0
        assert 0 < stats.spectral_radius < 1
        assert not stats.warm_started
        assert stats.fallbacks == ()

    def test_as_dict_round_trips_to_json_types(self):
        import json

        a0, a1, a2 = mmpp_m1_blocks()
        _, stats = r_matrix(a0, a1, a2, return_stats=True)
        payload = stats.as_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_without_flag_returns_matrix_only(self):
        r = r_matrix(*MM1)
        assert isinstance(r, np.ndarray)


class TestWarmStart:
    def test_warm_equals_cold_within_tolerance(self):
        a0, a1, a2 = mmpp_m1_blocks(util=0.7)
        cold = r_matrix(a0, a1, a2)
        # Seed the nearby 0.75-utilization problem with the 0.7 solution.
        b0, b1, b2 = mmpp_m1_blocks(util=0.75)
        warm, stats = r_matrix(b0, b1, b2, initial_r=cold, return_stats=True)
        reference = r_matrix(b0, b1, b2)
        np.testing.assert_allclose(warm, reference, atol=1e-8)
        assert stats.warm_started
        assert stats.algorithm == "newton"

    def test_warm_start_uses_few_iterations(self):
        a0, a1, a2 = mmpp_m1_blocks(util=0.7)
        cold = r_matrix(a0, a1, a2)
        b0, b1, b2 = mmpp_m1_blocks(util=0.72)
        _, warm_stats = r_matrix(b0, b1, b2, initial_r=cold, return_stats=True)
        _, cold_stats = r_matrix(
            b0, b1, b2, algorithm="functional", return_stats=True
        )
        assert warm_stats.iterations < cold_stats.iterations

    def test_garbage_seed_falls_back_to_cold(self):
        a0, a1, a2 = mmpp_m1_blocks()
        garbage = np.full((2, 2), 50.0)
        r, stats = r_matrix(a0, a1, a2, initial_r=garbage, return_stats=True)
        reference = r_matrix(a0, a1, a2)
        np.testing.assert_allclose(r, reference, atol=1e-8)
        residual = a0 + r @ a1 + r @ r @ a2
        np.testing.assert_allclose(residual, 0.0, atol=1e-8)

    def test_exact_seed_converges_immediately(self):
        a0, a1, a2 = mmpp_m1_blocks()
        exact = r_matrix(a0, a1, a2)
        _, stats = r_matrix(a0, a1, a2, initial_r=exact, return_stats=True)
        assert stats.warm_started
        assert stats.iterations <= 3
