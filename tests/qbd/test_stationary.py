"""Tests for the QBD boundary solve and stationary distribution."""

import numpy as np
import pytest

from repro.markov import stationary_distribution
from repro.processes import fit_mmpp2
from repro.qbd import QBDProcess, solve_boundary, solve_qbd
from repro.qbd.rmatrix import r_matrix


def mm1_qbd(lam: float = 1.0, mu: float = 2.0) -> QBDProcess:
    return QBDProcess.homogeneous(
        np.array([[lam]]), np.array([[-(lam + mu)]]), np.array([[mu]])
    )


def mmpp_m1_qbd(util: float = 0.7, mu: float = 1.0) -> QBDProcess:
    # decay 0.9 keeps sp(R) well below 1 so a few hundred truncated levels
    # capture the tail to ~1e-12 and the dense oracle is exact enough.
    mmpp = fit_mmpp2(rate=util * mu, scv=2.4, decay=0.9)
    a0 = mmpp.d1
    a1 = mmpp.d0 - mu * np.eye(2)
    a2 = mu * np.eye(2)
    return QBDProcess.homogeneous(a0, a1, a2)


class TestMM1ClosedForm:
    def test_geometric_solution(self):
        lam, mu = 1.0, 2.0
        rho = lam / mu
        sol = solve_qbd(mm1_qbd(lam, mu))
        np.testing.assert_allclose(sol.boundary, [1 - rho], atol=1e-10)
        for k in range(1, 6):
            np.testing.assert_allclose(sol.level(k), [(1 - rho) * rho**k], atol=1e-10)

    def test_mean_queue_length(self):
        lam, mu = 1.5, 2.0
        rho = lam / mu
        sol = solve_qbd(mm1_qbd(lam, mu))
        mean = float(sol.repeating_level_weighted.sum())
        np.testing.assert_allclose(mean, rho / (1 - rho), rtol=1e-10)

    def test_total_mass_is_one(self):
        sol = solve_qbd(mm1_qbd())
        assert sol.total_mass == pytest.approx(1.0, abs=1e-12)


class TestAgainstTruncatedChain:
    @pytest.mark.parametrize("util", [0.3, 0.5, 0.7])
    def test_matches_truncated_solve(self, util):
        qbd = mmpp_m1_qbd(util=util)
        sol = solve_qbd(qbd)
        levels = 600
        pi = stationary_distribution(qbd.truncated_generator(levels), method="dense")
        n_b = qbd.boundary_size
        np.testing.assert_allclose(pi[:n_b], sol.boundary, atol=1e-6)
        for k in range(1, 6):
            lo = n_b + (k - 1) * qbd.phase_count
            np.testing.assert_allclose(
                pi[lo : lo + qbd.phase_count], sol.level(k), atol=1e-6
            )

    def test_level_sums_match_truncation(self):
        qbd = mmpp_m1_qbd(util=0.5)
        sol = solve_qbd(qbd)
        levels = 300
        pi = stationary_distribution(qbd.truncated_generator(levels), method="dense")
        n_b, m = qbd.boundary_size, qbd.phase_count
        tail = pi[n_b:].reshape(levels, m)
        np.testing.assert_allclose(tail.sum(axis=0), sol.repeating_mass, atol=1e-8)
        weighted = (np.arange(1, levels + 1)[:, None] * tail).sum(axis=0)
        np.testing.assert_allclose(weighted, sol.repeating_level_weighted, atol=1e-6)


class TestDiagnostics:
    def test_residual_is_small(self):
        sol = solve_qbd(mmpp_m1_qbd())
        assert sol.residual(levels=8) < 1e-9

    def test_spectral_radius_below_one(self):
        sol = solve_qbd(mmpp_m1_qbd(util=0.9))
        assert 0 < sol.spectral_radius < 1

    def test_tail_mass_decreases(self):
        sol = solve_qbd(mmpp_m1_qbd(util=0.8))
        masses = [sol.tail_mass(k).sum() for k in range(1, 8)]
        assert all(a > b for a, b in zip(masses, masses[1:]))

    def test_tail_mass_consistency(self):
        sol = solve_qbd(mmpp_m1_qbd())
        lhs = sol.tail_mass(1)
        np.testing.assert_allclose(lhs, sol.repeating_mass, atol=1e-12)

    def test_level_zero_rejected(self):
        sol = solve_qbd(mm1_qbd())
        with pytest.raises(ValueError, match="numbered from 1"):
            sol.level(0)

    def test_boundary_solve_shape_check(self):
        qbd = mm1_qbd()
        with pytest.raises(ValueError, match="shape"):
            solve_boundary(qbd, np.eye(2))


class TestLevelSumFactorization:
    """The LU refactor must not change any published quantity."""

    def test_residual_unchanged_by_lu_refactor(self):
        # The residual is the solution-quality oracle: computing the level
        # sums through the shared LU factorization (instead of a dense
        # inverse per quantity) must leave it at solver accuracy.
        sol = solve_qbd(mmpp_m1_qbd(util=0.7))
        assert sol.residual(levels=8) < 1e-9

    def test_level_sums_match_explicit_inverse(self):
        sol = solve_qbd(mmpp_m1_qbd(util=0.8))
        inv = np.linalg.inv(np.eye(sol.r.shape[0]) - sol.r)
        pi1 = sol.level(1)
        np.testing.assert_allclose(
            sol.repeating_mass, pi1 @ inv, atol=1e-12
        )
        np.testing.assert_allclose(
            sol.repeating_level_weighted, pi1 @ inv @ inv, atol=1e-12
        )
        np.testing.assert_allclose(
            sol.tail_mass(3), sol.level(3) @ inv, atol=1e-12
        )

    def test_levels_are_memoized(self):
        sol = solve_qbd(mmpp_m1_qbd())
        assert sol.level(4) is sol.level(4)

    def test_old_pickle_state_restores(self):
        # Cache entries pickled before the refactor restore __dict__
        # directly: no _levels memo, plus a stale dense-inverse slot.
        sol = solve_qbd(mmpp_m1_qbd(util=0.6))
        expected = sol.repeating_mass.copy()
        state = {
            "_qbd": sol.qbd,
            "_r": sol.r,
            "_pi_boundary": sol.boundary,
            "_pi_first": sol.level(1),
            "_solve_stats": sol.solve_stats,
            "_inv_i_minus_r": np.eye(sol.r.shape[0]),  # stale, must drop
        }
        restored = object.__new__(type(sol))
        restored.__setstate__(state)
        assert "_inv_i_minus_r" not in restored.__dict__
        np.testing.assert_allclose(restored.repeating_mass, expected, atol=1e-12)
        assert restored.residual(levels=6) < 1e-9


class TestRepr:
    def test_repr_mentions_spectral_radius(self):
        assert "spectral_radius" in repr(solve_qbd(mm1_qbd()))
