"""Tests for QBD block validation and truncation."""

import numpy as np
import pytest

from repro.markov import stationary_distribution, validate_generator
from repro.qbd import QBDProcess


def mm1_qbd(lam: float = 1.0, mu: float = 2.0) -> QBDProcess:
    a0 = np.array([[lam]])
    a1 = np.array([[-(lam + mu)]])
    a2 = np.array([[mu]])
    return QBDProcess.homogeneous(a0, a1, a2)


class TestValidation:
    def test_mm1_blocks_accepted(self):
        qbd = mm1_qbd()
        assert qbd.boundary_size == 1
        assert qbd.phase_count == 1

    def test_rejects_negative_offdiagonal(self):
        with pytest.raises(ValueError, match="non-negative"):
            QBDProcess(
                b00=np.array([[-1.0]]),
                b01=np.array([[1.0]]),
                b10=np.array([[-2.0]]),
                a0=np.array([[1.0]]),
                a1=np.array([[-3.0]]),
                a2=np.array([[2.0]]),
            )

    def test_rejects_bad_boundary_row_sums(self):
        with pytest.raises(ValueError, match="boundary row"):
            QBDProcess(
                b00=np.array([[-1.0]]),
                b01=np.array([[2.0]]),
                b10=np.array([[2.0]]),
                a0=np.array([[1.0]]),
                a1=np.array([[-3.0]]),
                a2=np.array([[2.0]]),
            )

    def test_rejects_bad_repeating_row_sums(self):
        with pytest.raises(ValueError, match="repeating-level row"):
            QBDProcess(
                b00=np.array([[-1.0]]),
                b01=np.array([[1.0]]),
                b10=np.array([[2.0]]),
                a0=np.array([[1.0]]),
                a1=np.array([[-4.0]]),
                a2=np.array([[2.0]]),
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            QBDProcess(
                b00=np.array([[-1.0]]),
                b01=np.array([[1.0, 0.0]]),
                b10=np.array([[2.0]]),
                a0=np.array([[1.0]]),
                a1=np.array([[-3.0]]),
                a2=np.array([[2.0]]),
            )


class TestTruncatedGenerator:
    def test_truncation_is_valid_generator(self):
        q = mm1_qbd().truncated_generator(levels=10)
        validate_generator(q)

    def test_truncation_matches_mm1k(self):
        lam, mu, levels = 1.0, 2.0, 30
        q = mm1_qbd(lam, mu).truncated_generator(levels)
        pi = stationary_distribution(q)
        rho = lam / mu
        expected = rho ** np.arange(levels + 1)
        expected /= expected.sum()
        np.testing.assert_allclose(pi, expected, atol=1e-10)

    def test_levels_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            mm1_qbd().truncated_generator(0)

    def test_repr(self):
        assert "boundary_size=1" in repr(mm1_qbd())
