"""Tests for the batched matrix-geometric kernel (`repro.qbd.batched`)."""

import numpy as np
import pytest

from repro.contracts.errors import ContractViolation
from repro.core.model import FgBgModel
from repro.processes import fit_mmpp2
from repro.qbd import (
    BatchedSolveReport,
    QBDProcess,
    batched_r_matrix,
    r_matrix,
    solve_qbd,
    solve_qbd_batched,
)
from repro.workloads.paper import SERVICE_RATE_PER_MS

MU = SERVICE_RATE_PER_MS


def email_models(ps=(0.05, 0.1, 0.3, 0.6, 0.9), util=0.3):
    arrival = fit_mmpp2(rate=util * MU, scv=4.0, decay=0.8)
    return [
        FgBgModel(arrival=arrival, service_rate=MU, bg_probability=p)
        for p in ps
    ]


def mm1_triple(lam=1.0, mu=2.0):
    return (
        np.array([[lam]]),
        np.array([[-(lam + mu)]]),
        np.array([[mu]]),
    )


class TestBatchedRMatrix:
    def test_matches_scalar_solver_bitwise(self):
        qbds = [m.qbd for m in email_models()]
        stack = batched_r_matrix(
            np.stack([q.a0 for q in qbds]),
            np.stack([q.a1 for q in qbds]),
            np.stack([q.a2 for q in qbds]),
            blocks_validated=True,
        )
        for i, qbd in enumerate(qbds):
            scalar = r_matrix(qbd.a0, qbd.a1, qbd.a2, blocks_validated=True)
            np.testing.assert_array_equal(stack[i], scalar)

    def test_mm1_closed_form(self):
        lam, mu = 1.0, 2.0
        a0, a1, a2 = mm1_triple(lam, mu)
        stack = batched_r_matrix(
            np.stack([a0, a0]), np.stack([a1, a1]), np.stack([a2, a2])
        )
        np.testing.assert_allclose(stack, lam / mu, atol=1e-12)

    def test_result_is_read_only(self):
        a0, a1, a2 = mm1_triple()
        stack = batched_r_matrix(np.stack([a0]), np.stack([a1]), np.stack([a2]))
        assert not stack.flags.writeable

    def test_stats_and_report(self):
        qbds = [m.qbd for m in email_models(ps=(0.1, 0.3, 0.6))]
        r, stats, report = batched_r_matrix(
            np.stack([q.a0 for q in qbds]),
            np.stack([q.a1 for q in qbds]),
            np.stack([q.a2 for q in qbds]),
            blocks_validated=True,
            return_stats=True,
        )
        assert isinstance(report, BatchedSolveReport)
        assert report.batch_size == 3
        assert report.phase_count == qbds[0].phase_count
        assert report.fallbacks == ()
        assert report.iterations == sum(s.iterations for s in stats)
        assert report.max_iterations == max(s.iterations for s in stats)
        for s in stats:
            assert s.algorithm == "batched-logarithmic-reduction"
            assert 0 < s.spectral_radius < 1
            assert not s.warm_started

    def test_report_round_trips_to_dict(self):
        report = BatchedSolveReport(
            batch_size=2,
            phase_count=3,
            iterations=10,
            max_iterations=6,
            wall_time_ms=1.5,
            fallbacks=(1,),
        )
        payload = report.as_dict()
        assert payload["batch_size"] == 2
        assert payload["fallbacks"] == [1]

    def test_report_rejects_negative_sizes(self):
        with pytest.raises(ValueError, match="batch_size"):
            BatchedSolveReport(
                batch_size=-1,
                phase_count=2,
                iterations=0,
                max_iterations=0,
                wall_time_ms=0.0,
            )

    def test_rejects_mismatched_stacks(self):
        a0, a1, a2 = mm1_triple()
        with pytest.raises(ValueError, match="share one shape"):
            batched_r_matrix(
                np.stack([a0]), np.stack([a1]), np.stack([a2, a2])
            )

    def test_rejects_non_stack_input(self):
        a0, a1, a2 = mm1_triple()
        with pytest.raises(ValueError, match=r"\(N, m, m\)"):
            batched_r_matrix(a0, a1, a2)

    def test_precondition_names_offending_item(self):
        a0, a1, a2 = mm1_triple()
        bad_a0 = np.stack([a0, -a0])
        with pytest.raises(ContractViolation, match=r"A0\[1\]"):
            batched_r_matrix(bad_a0, np.stack([a1, a1]), np.stack([a2, a2]))

    def test_unstable_item_raises_like_scalar(self):
        # lam > mu: the batched iteration cannot converge and the scalar
        # fallback performs the drift diagnosis.
        a0, a1, a2 = mm1_triple(lam=3.0, mu=2.0)
        g0, g1, g2 = mm1_triple()
        with pytest.raises(ValueError, match="not positive recurrent"):
            batched_r_matrix(
                np.stack([g0, a0]), np.stack([g1, a1]), np.stack([g2, a2])
            )


class TestSolveQbdBatched:
    def test_matches_sequential_end_to_end(self):
        qbds = [m.qbd for m in email_models()]
        sequential = [solve_qbd(q) for q in qbds]
        batched = solve_qbd_batched(qbds)
        for s, b in zip(sequential, batched):
            np.testing.assert_array_equal(b.r, s.r)
            np.testing.assert_allclose(b.boundary, s.boundary, atol=1e-10)
            np.testing.assert_allclose(
                b.repeating_mass, s.repeating_mass, atol=1e-10
            )
            np.testing.assert_allclose(
                b.repeating_level_weighted,
                s.repeating_level_weighted,
                atol=1e-10,
            )

    def test_residual_is_small(self):
        for dist in solve_qbd_batched([m.qbd for m in email_models()]):
            assert dist.residual(levels=6) < 1e-9

    def test_total_mass_is_one(self):
        for dist in solve_qbd_batched([m.qbd for m in email_models()]):
            assert dist.total_mass == pytest.approx(1.0, abs=1e-10)

    def test_seeded_level_sums_match_lazy_path(self):
        qbds = [m.qbd for m in email_models(ps=(0.1, 0.6))]
        for dist in solve_qbd_batched(qbds):
            seeded = dist.repeating_mass
            lazy = dist._apply_inv_i_minus_r(dist.level(1))
            np.testing.assert_allclose(seeded, lazy, atol=1e-12)

    def test_single_item_batch(self):
        qbd = email_models(ps=(0.3,))[0].qbd
        (dist,), report = solve_qbd_batched([qbd], return_report=True)
        reference = solve_qbd(qbd)
        np.testing.assert_array_equal(dist.r, reference.r)
        assert report.batch_size == 1

    def test_carries_per_item_stats(self):
        for dist in solve_qbd_batched([m.qbd for m in email_models()]):
            assert dist.solve_stats is not None
            assert dist.solve_stats.iterations > 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            solve_qbd_batched([])

    def test_rejects_non_qbd(self):
        with pytest.raises(TypeError, match="QBDProcess"):
            solve_qbd_batched([np.eye(2)])

    def test_rejects_mixed_shapes(self):
        small = QBDProcess.homogeneous(*mm1_triple())
        big = email_models(ps=(0.3,))[0].qbd
        with pytest.raises(ValueError, match="mixed block shapes"):
            solve_qbd_batched([small, big])

    def test_distribution_arrays_read_only(self):
        (dist,) = solve_qbd_batched([email_models(ps=(0.3,))[0].qbd])
        for arr in (dist.r, dist.boundary, dist.repeating_mass):
            assert not np.asarray(arr).flags.writeable
