"""Tests for the M/G/1-type solver (Ramaswami's formula)."""

import numpy as np
import pytest

from repro.markov import stationary_distribution
from repro.processes import fit_mmpp2
from repro.qbd import QBDProcess, solve_qbd
from repro.qbd.mg1 import MG1Process, g_matrix_mg1, solve_mg1


def mm1_process(lam=1.0, mu=2.0) -> MG1Process:
    return MG1Process(
        boundary_blocks=(np.array([[-lam]]), np.array([[lam]])),
        down_block=np.array([[mu]]),
        repeating_blocks=(
            np.array([[mu]]),
            np.array([[-(lam + mu)]]),
            np.array([[lam]]),
        ),
    )


def batch2_process(lam=0.5, mu=2.0) -> MG1Process:
    """Poisson arrivals in batches of 2, exponential single service."""
    return MG1Process(
        boundary_blocks=(np.array([[-lam]]), np.zeros((1, 1)), np.array([[lam]])),
        down_block=np.array([[mu]]),
        repeating_blocks=(
            np.array([[mu]]),
            np.array([[-(lam + mu)]]),
            np.zeros((1, 1)),
            np.array([[lam]]),
        ),
    )


def mmpp_batch_process(util=0.5, mu=1.0, batch=2) -> MG1Process:
    """MMPP(2)-modulated batch arrivals: a 2-phase M/G/1-type chain."""
    mmpp = fit_mmpp2(rate=util * mu / batch, scv=2.0, decay=0.9)
    d0, d1 = mmpp.d0, mmpp.d1
    eye = np.eye(2)
    a_blocks = [mu * eye, d0 - mu * eye] + [np.zeros((2, 2))] * (batch - 1) + [d1]
    b_blocks = [d0] + [np.zeros((2, 2))] * (batch - 1) + [d1]
    return MG1Process(
        boundary_blocks=tuple(b_blocks),
        down_block=mu * eye,
        repeating_blocks=tuple(a_blocks),
    )


class TestValidation:
    def test_rejects_short_sequences(self):
        with pytest.raises(ValueError, match="at least"):
            MG1Process(
                boundary_blocks=(np.array([[-1.0]]),),
                down_block=np.array([[1.0]]),
                repeating_blocks=(np.array([[1.0]]), np.array([[-1.0]])),
            )

    def test_rejects_bad_row_sums(self):
        with pytest.raises(ValueError, match="sum to zero"):
            MG1Process(
                boundary_blocks=(np.array([[-1.0]]), np.array([[2.0]])),
                down_block=np.array([[2.0]]),
                repeating_blocks=(
                    np.array([[2.0]]),
                    np.array([[-3.0]]),
                    np.array([[1.0]]),
                ),
            )

    def test_rejects_negative_blocks(self):
        with pytest.raises(ValueError, match="non-negative"):
            MG1Process(
                boundary_blocks=(np.array([[-1.0]]), np.array([[1.0]])),
                down_block=np.array([[-2.0]]),
                repeating_blocks=(
                    np.array([[2.0]]),
                    np.array([[-3.0]]),
                    np.array([[1.0]]),
                ),
            )

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="not positive recurrent"):
            solve_mg1(batch2_process(lam=1.5, mu=2.0))  # batch drift 2*1.5 > 2

    def test_drift_of_batch_queue(self):
        # Net drift = 2*lam - mu.
        assert batch2_process(lam=0.5, mu=2.0).drift == pytest.approx(-1.0)


class TestGMatrix:
    def test_g_is_stochastic(self):
        proc = mmpp_batch_process()
        g = g_matrix_mg1(proc.repeating_blocks)
        np.testing.assert_allclose(g.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(g >= -1e-12)

    def test_g_solves_power_series(self):
        proc = mmpp_batch_process()
        a = proc.repeating_blocks
        g = g_matrix_mg1(a)
        residual = a[0] + a[1] @ g + a[2] @ g @ g + a[3] @ g @ g @ g
        np.testing.assert_allclose(residual, 0.0, atol=1e-9)


class TestAgainstClosedForms:
    def test_mm1_geometric(self):
        lam, mu = 1.0, 2.0
        sol = solve_mg1(mm1_process(lam, mu))
        rho = lam / mu
        assert sol.boundary[0] == pytest.approx(1 - rho, rel=1e-10)
        for k in range(1, 8):
            assert sol.level(k)[0] == pytest.approx((1 - rho) * rho**k, rel=1e-9)

    def test_mm1_matches_qbd_solver(self):
        lam, mu = 0.8, 1.0
        qbd = QBDProcess.homogeneous(
            np.array([[lam]]), np.array([[-(lam + mu)]]), np.array([[mu]])
        )
        qbd_sol = solve_qbd(qbd)
        mg1_sol = solve_mg1(mm1_process(lam, mu))
        assert mg1_sol.boundary[0] == pytest.approx(qbd_sol.boundary[0], rel=1e-9)
        for k in range(1, 6):
            assert mg1_sol.level(k)[0] == pytest.approx(
                float(qbd_sol.level(k)[0]), rel=1e-8
            )


class TestAgainstTruncatedChain:
    @pytest.mark.parametrize("proc_factory", [batch2_process, mmpp_batch_process])
    def test_levels_match_dense_solve(self, proc_factory):
        proc = proc_factory()
        sol = solve_mg1(proc)
        pi = stationary_distribution(proc.truncated_generator(300), method="dense")
        n_b, m = proc.boundary_size, proc.phase_count
        np.testing.assert_allclose(pi[:n_b], sol.boundary, atol=1e-9)
        for k in range(1, 10):
            lo = n_b + (k - 1) * m
            np.testing.assert_allclose(pi[lo : lo + m], sol.level(k), atol=1e-9)

    def test_mass_and_mean(self):
        sol = solve_mg1(batch2_process())
        assert sol.total_mass == pytest.approx(1.0, abs=1e-10)
        pi = stationary_distribution(
            batch2_process().truncated_generator(300), method="dense"
        )
        expected_mean = float(np.arange(301) @ pi)
        assert sol.mean_level() == pytest.approx(expected_mean, rel=1e-8)


class TestAccessors:
    def test_level_zero_rejected(self):
        with pytest.raises(ValueError, match="numbered from 1"):
            solve_mg1(mm1_process()).level(0)

    def test_levels_beyond_truncation_are_zero(self):
        sol = solve_mg1(mm1_process())
        far = sol.level(sol.computed_levels + 50)
        np.testing.assert_array_equal(far, 0.0)

    def test_truncated_generator_levels_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            mm1_process().truncated_generator(0)
