"""Tests for the deviation matrix and absorbing-chain utilities."""

import numpy as np
import pytest

from repro.markov.deviation import (
    absorption_probabilities,
    deviation_matrix,
    fundamental_matrix,
    mean_absorption_times,
)
from repro.markov.stationary import stationary_distribution
from repro.processes import PhaseType

Q = np.array([[-2.0, 2.0], [3.0, -3.0]])


class TestDeviationMatrix:
    def test_rows_sum_to_zero(self):
        d = deviation_matrix(Q)
        np.testing.assert_allclose(d @ np.ones(2), 0.0, atol=1e-12)

    def test_pi_annihilates(self):
        pi = stationary_distribution(Q)
        d = deviation_matrix(Q)
        np.testing.assert_allclose(pi @ d, 0.0, atol=1e-12)

    def test_defining_equation(self):
        # D Q = Q D = e pi - I (the group-inverse property).
        pi = stationary_distribution(Q)
        d = deviation_matrix(Q)
        e_pi = np.outer(np.ones(2), pi)
        np.testing.assert_allclose(d @ Q, e_pi - np.eye(2), atol=1e-12)
        np.testing.assert_allclose(Q @ d, e_pi - np.eye(2), atol=1e-12)

    def test_matches_numeric_integral(self):
        from scipy.linalg import expm

        pi = stationary_distribution(Q)
        e_pi = np.outer(np.ones(2), pi)
        ts = np.linspace(0.0, 40.0, 8001)
        integrand = np.array([expm(Q * t) - e_pi for t in ts])
        numeric = np.trapezoid(integrand, ts, axis=0)
        np.testing.assert_allclose(deviation_matrix(Q), numeric, atol=1e-4)


class TestFundamentalMatrix:
    def test_exponential_sojourn(self):
        n = fundamental_matrix(np.array([[-2.0]]))
        np.testing.assert_allclose(n, [[0.5]])

    def test_rejects_singular(self):
        with pytest.raises(ValueError, match="singular"):
            fundamental_matrix(np.array([[-1.0, 1.0], [1.0, -1.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            fundamental_matrix(np.ones((2, 3)))


class TestAbsorption:
    def test_mean_times_match_ph_mean(self):
        ph = PhaseType.erlang(3, 1.5)
        times = mean_absorption_times(ph.t)
        assert times[0] == pytest.approx(ph.mean)

    def test_erlang_stage_times_decrease(self):
        ph = PhaseType.erlang(4, 2.0)
        times = mean_absorption_times(ph.t)
        assert np.all(np.diff(times) < 0)

    def test_two_exit_competition(self):
        # One transient state, two absorbing exits with rates 1 and 3.
        t = np.array([[-4.0]])
        r = np.array([[1.0, 3.0]])
        b = absorption_probabilities(t, r)
        np.testing.assert_allclose(b, [[0.25, 0.75]])

    def test_rows_are_probability_vectors(self):
        t = np.array([[-3.0, 1.0], [0.5, -2.0]])
        r = np.array([[2.0, 0.0], [0.5, 1.0]])
        b = absorption_probabilities(t, r)
        np.testing.assert_allclose(b.sum(axis=1), 1.0, atol=1e-12)
        assert np.all(b >= 0)

    def test_rejects_inconsistent_rows(self):
        t = np.array([[-3.0]])
        r = np.array([[1.0]])
        with pytest.raises(ValueError, match="sum to zero"):
            absorption_probabilities(t, r)

    def test_rejects_negative_rates(self):
        t = np.array([[-1.0]])
        r = np.array([[-1.0, 2.0]])
        with pytest.raises(ValueError, match="non-negative"):
            absorption_probabilities(t, r)
