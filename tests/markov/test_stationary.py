"""Tests for stationary solvers (dense and GTH)."""

import numpy as np
import pytest

from repro.markov import (
    stationary_distribution,
    stationary_distribution_dense,
    stationary_distribution_gth,
)
from repro.markov.birth_death import birth_death_generator

TWO_STATE = np.array([[-2.0, 2.0], [3.0, -3.0]])
TWO_STATE_PI = np.array([0.6, 0.4])


@pytest.mark.parametrize(
    "solver",
    [stationary_distribution, stationary_distribution_dense, stationary_distribution_gth],
)
class TestAllSolvers:
    def test_two_state_closed_form(self, solver):
        np.testing.assert_allclose(solver(TWO_STATE), TWO_STATE_PI, atol=1e-12)

    def test_result_is_distribution(self, solver):
        q = birth_death_generator([1.0, 2.0, 3.0], [2.0, 2.0, 2.0])
        pi = solver(q)
        assert np.all(pi >= 0)
        np.testing.assert_allclose(pi.sum(), 1.0, atol=1e-12)

    def test_balance_equations_hold(self, solver):
        rng = np.random.default_rng(7)
        q = rng.uniform(0.1, 5.0, size=(6, 6))
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        pi = solver(q)
        np.testing.assert_allclose(pi @ q, np.zeros(6), atol=1e-10)

    def test_symmetric_ring_is_uniform(self, solver):
        n = 5
        q = np.zeros((n, n))
        for i in range(n):
            q[i, (i + 1) % n] = 1.0
            q[i, (i - 1) % n] = 1.0
        np.fill_diagonal(q, -q.sum(axis=1))
        np.testing.assert_allclose(solver(q), np.full(n, 1.0 / n), atol=1e-12)


class TestGTHRobustness:
    def test_extreme_rate_ratios(self):
        # Rates spanning 12 orders of magnitude: GTH must stay exact.
        q = np.array(
            [
                [-1e-6, 1e-6, 0.0],
                [1e6, -(1e6 + 1e-6), 1e-6],
                [0.0, 1.0, -1.0],
            ]
        )
        pi = stationary_distribution_gth(q)
        np.testing.assert_allclose(pi @ q, np.zeros(3), atol=1e-9 * 1e6)
        # Detailed-balance-style sanity: state 0 dominates.
        assert pi[0] > 0.99

    def test_reducible_chain_raises(self):
        q = np.array([[-1.0, 1.0, 0.0], [1.0, -1.0, 0.0], [0.0, 0.0, 0.0]])
        with pytest.raises(ValueError, match="reducible"):
            stationary_distribution_gth(q)

    def test_matches_dense_on_random_chains(self):
        rng = np.random.default_rng(42)
        for _ in range(10):
            n = int(rng.integers(2, 12))
            q = rng.uniform(0.0, 3.0, size=(n, n))
            np.fill_diagonal(q, 0.0)
            np.fill_diagonal(q, -q.sum(axis=1))
            np.testing.assert_allclose(
                stationary_distribution_gth(q),
                stationary_distribution_dense(q),
                atol=1e-9,
            )


class TestAutoDispatch:
    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            stationary_distribution(TWO_STATE, method="qr")

    def test_explicit_methods_agree(self):
        a = stationary_distribution(TWO_STATE, method="dense")
        b = stationary_distribution(TWO_STATE, method="gth")
        np.testing.assert_allclose(a, b, atol=1e-12)
