"""Tests for uniformization-based transient analysis."""

import numpy as np
import pytest

from repro.markov import stationary_distribution, transient_distribution

Q = np.array([[-2.0, 2.0], [3.0, -3.0]])


class TestTransientDistribution:
    def test_zero_time_returns_initial(self):
        init = np.array([1.0, 0.0])
        np.testing.assert_array_equal(transient_distribution(Q, init, 0.0), init)

    def test_two_state_closed_form(self):
        # p_00(t) = pi_0 + pi_1 * exp(-(a+b) t) for a 2-state chain.
        a, b = 2.0, 3.0
        t = 0.37
        init = np.array([1.0, 0.0])
        p = transient_distribution(Q, init, t)
        expected0 = b / (a + b) + a / (a + b) * np.exp(-(a + b) * t)
        np.testing.assert_allclose(p[0], expected0, atol=1e-10)

    def test_converges_to_stationary(self):
        init = np.array([0.0, 1.0])
        p = transient_distribution(Q, init, 100.0)
        np.testing.assert_allclose(p, stationary_distribution(Q), atol=1e-9)

    def test_remains_distribution_at_all_times(self):
        init = np.array([0.3, 0.7])
        for t in [0.01, 0.5, 2.0, 25.0]:
            p = transient_distribution(Q, init, t)
            assert np.all(p >= 0)
            np.testing.assert_allclose(p.sum(), 1.0, atol=1e-9)

    def test_large_uniformization_constant(self):
        q = np.array([[-1e4, 1e4], [1.0, -1.0]])
        init = np.array([1.0, 0.0])
        p = transient_distribution(q, init, 1.0)
        np.testing.assert_allclose(p.sum(), 1.0, atol=1e-8)

    def test_invalid_initial_raises(self):
        with pytest.raises(ValueError, match="probability"):
            transient_distribution(Q, np.array([0.5, 0.2]), 1.0)

    def test_negative_time_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            transient_distribution(Q, np.array([1.0, 0.0]), -1.0)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError, match="shape"):
            transient_distribution(Q, np.array([1.0, 0.0, 0.0]), 1.0)
