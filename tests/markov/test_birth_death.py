"""Tests for birth-death closed forms."""

import numpy as np
import pytest

from repro.markov import birth_death_stationary, stationary_distribution
from repro.markov.birth_death import birth_death_generator


class TestBirthDeathStationary:
    def test_mm1k_geometric(self):
        lam, mu, k = 1.0, 2.0, 10
        pi = birth_death_stationary([lam] * k, [mu] * k)
        rho = lam / mu
        expected = rho ** np.arange(k + 1)
        expected /= expected.sum()
        np.testing.assert_allclose(pi, expected, atol=1e-12)

    def test_matches_generic_solver(self):
        birth = [1.0, 0.5, 2.0, 0.1]
        death = [1.5, 1.5, 3.0, 0.2]
        pi = birth_death_stationary(birth, death)
        q = birth_death_generator(birth, death)
        np.testing.assert_allclose(pi, stationary_distribution(q), atol=1e-10)

    def test_extreme_ratios_survive_log_space(self):
        pi = birth_death_stationary([1e-8] * 50, [1e8] * 50)
        assert pi[0] == pytest.approx(1.0)
        assert np.all(np.isfinite(pi))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="as many"):
            birth_death_stationary([1.0, 2.0], [1.0])

    def test_nonpositive_death_rate_raises(self):
        with pytest.raises(ValueError, match="death rates"):
            birth_death_stationary([1.0], [0.0])

    def test_zero_birth_rate_truncates_mass(self):
        pi = birth_death_stationary([1.0, 0.0, 1.0], [1.0, 1.0, 1.0])
        # No mass can flow past state 1.
        np.testing.assert_allclose(pi[2:], 0.0, atol=1e-15)
