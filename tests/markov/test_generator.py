"""Tests for generator validation and transforms."""

import numpy as np
import pytest

from repro.markov import (
    embedded_dtmc,
    is_generator,
    uniformization_rate,
    validate_generator,
)

VALID = np.array([[-2.0, 2.0], [3.0, -3.0]])


class TestValidateGenerator:
    def test_accepts_valid_generator(self):
        out = validate_generator(VALID)
        np.testing.assert_array_equal(out, VALID)

    def test_accepts_list_input(self):
        out = validate_generator([[-1.0, 1.0], [0.5, -0.5]])
        assert out.dtype == float

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            validate_generator(np.ones((2, 3)))

    def test_rejects_negative_off_diagonal(self):
        q = np.array([[-1.0, -1.0], [2.0, -2.0]])
        with pytest.raises(ValueError, match="negative off-diagonal"):
            validate_generator(q)

    def test_rejects_positive_diagonal(self):
        q = np.array([[1.0, -1.0], [2.0, -2.0]])
        with pytest.raises(ValueError, match="off-diagonal|diagonal"):
            validate_generator(q)

    def test_rejects_nonzero_row_sums(self):
        q = np.array([[-1.0, 2.0], [1.0, -1.0]])
        with pytest.raises(ValueError, match="sums to"):
            validate_generator(q)

    def test_tolerates_tiny_rowsum_roundoff(self):
        q = np.array([[-1.0, 1.0 + 1e-13], [1.0, -1.0]])
        validate_generator(q)

    def test_scales_tolerance_with_rates(self):
        # Row sums off by 1e-7 are fine when rates are ~1e6.
        q = np.array([[-1e6, 1e6 + 1e-7], [1.0, -1.0]])
        validate_generator(q)

    def test_absorbing_state_allowed(self):
        q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        validate_generator(q)


class TestIsGenerator:
    def test_true_for_valid(self):
        assert is_generator(VALID)

    def test_false_for_invalid(self):
        assert not is_generator(np.array([[1.0, -1.0], [0.0, 0.0]]))


class TestEmbeddedDtmc:
    def test_rows_are_stochastic(self):
        p = embedded_dtmc(VALID)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_two_state_jump_chain_alternates(self):
        p = embedded_dtmc(VALID)
        expected = np.array([[0.0, 1.0], [1.0, 0.0]])
        np.testing.assert_allclose(p, expected)

    def test_absorbing_state_becomes_self_loop(self):
        q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        p = embedded_dtmc(q)
        assert p[1, 1] == 1.0

    def test_three_state_proportional_split(self):
        q = np.array([[-3.0, 1.0, 2.0], [1.0, -1.0, 0.0], [4.0, 0.0, -4.0]])
        p = embedded_dtmc(q)
        np.testing.assert_allclose(p[0], [0.0, 1.0 / 3.0, 2.0 / 3.0])


class TestUniformizationRate:
    def test_exceeds_max_exit_rate(self):
        assert uniformization_rate(VALID) >= 3.0

    def test_zero_generator(self):
        assert uniformization_rate(np.zeros((2, 2))) == 1.0
