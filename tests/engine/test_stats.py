"""Tests for engine statistics aggregation."""

import json
import math

from repro.engine import EngineStats, SolveRecord
from repro.qbd import SolveStats


def stats(algorithm="newton", iterations=5, wall=1.5, sp=0.9, warm=True):
    return SolveStats(
        algorithm=algorithm,
        iterations=iterations,
        wall_time_ms=wall,
        spectral_radius=sp,
        warm_started=warm,
    )


class TestSolveRecord:
    def test_as_dict(self):
        record = SolveRecord("abc", cache_hit=False, stats=stats())
        payload = record.as_dict()
        assert payload["fingerprint"] == "abc"
        assert payload["cache_hit"] is False
        assert payload["stats"]["algorithm"] == "newton"

    def test_as_dict_without_stats(self):
        assert SolveRecord("abc", True, None).as_dict()["stats"] is None


class TestEngineStats:
    def filled(self):
        es = EngineStats()
        es.add(SolveRecord("a", False, stats("logarithmic-reduction", 7, 2.0, 0.9, False)))
        es.add(SolveRecord("b", False, stats("newton", 5, 30.0, 0.95, True)))
        es.add(SolveRecord("a", True, stats("logarithmic-reduction", 7, 2.0, 0.9, False)))
        return es

    def test_counts(self):
        es = self.filled()
        assert es.solves == 3
        assert es.cache_hits == 1
        assert es.solver_calls == 2
        assert es.warm_started == 1

    def test_totals_exclude_cache_hits(self):
        es = self.filled()
        assert es.total_iterations == 12
        assert es.total_wall_time_ms == 32.0

    def test_max_spectral_radius(self):
        assert self.filled().max_spectral_radius == 0.95
        assert math.isnan(EngineStats().max_spectral_radius)

    def test_algorithm_counts(self):
        assert self.filled().algorithm_counts() == {
            "logarithmic-reduction": 1,
            "newton": 1,
        }

    def test_summary_is_json_serializable(self):
        summary = self.filled().summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["solves"] == 3

    def test_write_json(self, tmp_path):
        path = tmp_path / "bench.json"
        self.filled().write_json(path, include_records=True)
        payload = json.loads(path.read_text())
        assert payload["summary"]["solver_calls"] == 2
        assert len(payload["records"]) == 3

    def test_extend_and_clear(self):
        es = EngineStats()
        es.extend(self.filled().records)
        assert es.solves == 3
        es.clear()
        assert es.solves == 0
