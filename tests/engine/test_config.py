"""Tests for EngineConfig and the engine's progress/cancel hooks."""

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.engine import EngineConfig, SolveCache, SweepCancelled, SweepEngine
from repro.processes import PoissonProcess
from repro.workloads.paper import SERVICE_RATE_PER_MS

MU = SERVICE_RATE_PER_MS


def models(n=3, p=0.3):
    base = FgBgModel(
        arrival=PoissonProcess(0.01), service_rate=MU, bg_probability=p
    )
    return [base.at_utilization(u) for u in np.linspace(0.2, 0.6, n)]


def summary_without_timings(stats) -> dict:
    """EngineStats.summary() minus the wall-clock field (never equal)."""
    payload = stats.summary()
    payload.pop("total_wall_time_ms")
    return payload


class TestValidation:
    def test_defaults_are_valid_and_default(self):
        config = EngineConfig()
        assert config.is_default
        assert not EngineConfig(jobs=2).is_default

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("jobs", 0, "jobs must be >= 1"),
            ("tol", 0.0, "tol must be positive"),
            ("on_error", "explode", "on_error must be one of"),
            ("max_retries", -1, "max_retries must be >= 0"),
            ("retry_backoff_ms", -1.0, "retry_backoff_ms must be >= 0"),
            ("chain_timeout_ms", 0.0, "chain_timeout_ms must be positive"),
        ],
    )
    def test_field_validation(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            EngineConfig(**{field: value})

    def test_batched_requires_logred(self):
        with pytest.raises(ValueError, match="logarithmic-reduction"):
            EngineConfig(batched=True, algorithm="functional")

    def test_replace_revalidates(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            EngineConfig().replace(jobs=0)

    def test_round_trip(self):
        config = EngineConfig(
            jobs=2, cache_dir="/tmp/c", warm_start=True, on_error="collect"
        )
        assert EngineConfig.from_dict(config.as_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown EngineConfig field"):
            EngineConfig.from_dict({"jbos": 2})


class TestBuildCache:
    def test_no_cache_by_default(self):
        assert EngineConfig().build_cache() is None

    def test_memory_cache(self):
        cache = EngineConfig(cache_memory=True).build_cache()
        assert isinstance(cache, SolveCache)
        assert cache.directory is None

    def test_disk_cache(self, tmp_path):
        cache = EngineConfig(cache_dir=str(tmp_path / "c")).build_cache()
        assert str(cache.directory) == str(tmp_path / "c")


class TestEquivalence:
    """config= and legacy kwargs are two spellings of the same engine."""

    def test_engine_attributes_match(self):
        config = EngineConfig(jobs=2, warm_start=True, on_error="collect")
        via_config = SweepEngine(config=config)
        via_kwargs = SweepEngine(jobs=2, warm_start=True, on_error="collect")
        assert via_config.config == via_kwargs.config
        assert (via_config.jobs, via_config.warm_start, via_config.on_error) == (
            via_kwargs.jobs,
            via_kwargs.warm_start,
            via_kwargs.on_error,
        )

    def test_identical_engine_stats(self):
        """The acceptance check: same chain, same stats summary."""
        chain = models()
        via_config = SweepEngine(config=EngineConfig(cache_memory=True))
        via_kwargs = SweepEngine(cache=SolveCache(None))
        a = via_config.run_chain(chain)
        b = via_kwargs.run_chain(chain)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(
                [x.fg_queue_length, x.bg_queue_length],
                [y.fg_queue_length, y.bg_queue_length],
            )
        assert summary_without_timings(via_config.stats) == summary_without_timings(
            via_kwargs.stats
        )

    def test_kwargs_override_config_fields(self):
        engine = SweepEngine(config=EngineConfig(jobs=4, on_error="skip"), jobs=1)
        assert engine.jobs == 1
        assert engine.on_error == "skip"
        assert engine.config.jobs == 1

    def test_explicit_cache_object_wins(self, tmp_path):
        cache = SolveCache(str(tmp_path / "c"))
        engine = SweepEngine(config=EngineConfig(), cache=cache)
        assert engine.cache is cache
        assert engine.config.cache_dir == str(tmp_path / "c")

    def test_invalid_override_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            SweepEngine(config=EngineConfig(), jobs=0)


class TestHooks:
    def test_progress_ticks_once_per_point(self):
        ticks = []
        engine = SweepEngine(progress=ticks.append)
        engine.run_chain(models(3))
        assert sum(ticks) == 3

    def test_progress_counts_cache_hits(self):
        cache = SolveCache(None)
        SweepEngine(cache=cache).run_chain(models(3))
        ticks = []
        engine = SweepEngine(cache=cache, progress=ticks.append)
        engine.run_chain(models(3))
        assert sum(ticks) == 3
        assert engine.stats.cache_hits == 3

    def test_progress_ticks_under_parallel_jobs(self):
        ticks = []
        engine = SweepEngine(jobs=2, progress=ticks.append)
        chains = [models(2, p=0.1), models(2, p=0.6)]
        engine.run_chains(chains)
        assert sum(ticks) == 4

    def test_progress_ticks_when_batched(self):
        ticks = []
        engine = SweepEngine(batched=True, progress=ticks.append)
        engine.run_chain(models(3))
        assert sum(ticks) == 3

    def test_cancel_checked_before_first_solve(self):
        engine = SweepEngine(cancel=lambda: True)
        with pytest.raises(SweepCancelled):
            engine.run_chain(models(2))
        assert engine.stats.solves == 0

    def test_cancel_mid_chain_stops_promptly(self):
        done = []

        def cancel_after_one():
            return len(done) >= 1

        engine = SweepEngine(progress=done.append, cancel=cancel_after_one)
        with pytest.raises(SweepCancelled):
            engine.run_chain(models(4))
        assert sum(done) < 4

    def test_cancel_never_becomes_a_nan_point(self):
        """SweepCancelled must not be swallowed by on_error isolation."""
        engine = SweepEngine(on_error="collect", cancel=lambda: True)
        with pytest.raises(SweepCancelled):
            engine.run_chain(models(2))
        assert engine.stats.failures == []

    def test_no_hooks_by_default(self):
        engine = SweepEngine()
        assert engine.progress is None
        assert engine.cancel is None


class TestStatsSummaryKeys:
    def test_recovered_work_counters_always_present(self):
        engine = SweepEngine()
        engine.run_chain(models(1))
        summary = engine.stats.summary()
        assert summary["cache_quarantined"] == 0
        assert summary["worker_retries"] == 0
