"""Tests for the sweep engine: caching, warm starts, parallel chains."""

import numpy as np
import pytest

from repro.core import FgBgModel
from repro.engine import SolveCache, SweepEngine
from repro.processes import PoissonProcess, fit_mmpp2
from repro.workloads.paper import SERVICE_RATE_PER_MS

MU = SERVICE_RATE_PER_MS
UTILIZATIONS = (0.1, 0.25, 0.4, 0.55)


def mmpp_base(p=0.3):
    arrival = fit_mmpp2(rate=0.3 * MU, scv=4.0, decay=0.8)
    return FgBgModel(arrival=arrival, service_rate=MU, bg_probability=p)


def chain(p=0.3):
    base = mmpp_base(p)
    return [base.at_utilization(u) for u in UTILIZATIONS]


class TestSolve:
    def test_plain_solve_matches_model(self):
        engine = SweepEngine()
        model = mmpp_base()
        assert (
            engine.solve(model).fg_queue_length == model.solve().fg_queue_length
        )
        assert engine.stats.solves == 1
        assert engine.stats.cache_hits == 0

    def test_cache_hit_returns_same_object(self):
        engine = SweepEngine(cache=SolveCache())
        model = mmpp_base()
        first = engine.solve(model)
        second = engine.solve(model)
        assert second is first
        assert engine.stats.cache_hits == 1
        assert engine.stats.solver_calls == 1

    def test_cache_distinguishes_models(self):
        engine = SweepEngine(cache=SolveCache())
        engine.solve(mmpp_base(p=0.3))
        engine.solve(mmpp_base(p=0.6))
        assert engine.stats.cache_hits == 0
        assert engine.stats.solver_calls == 2

    def test_cache_path_is_coerced(self, tmp_path):
        engine = SweepEngine(cache=tmp_path / "solves")
        assert isinstance(engine.cache, SolveCache)
        engine.solve(mmpp_base())
        assert len(list((tmp_path / "solves").iterdir())) == 1

    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepEngine(jobs=0)


class TestRunChain:
    def test_matches_individual_solves(self):
        engine = SweepEngine()
        solutions = engine.run_chain(chain())
        for model, solution in zip(chain(), solutions):
            assert solution.fg_queue_length == model.solve().fg_queue_length

    def test_warm_chain_matches_cold_within_tolerance(self):
        cold = [m.solve() for m in chain()]
        warm = SweepEngine(warm_start=True).run_chain(chain())
        for c, w in zip(cold, warm):
            assert w.fg_queue_length == pytest.approx(
                c.fg_queue_length, abs=1e-8
            )
            assert w.bg_completion_rate == pytest.approx(
                c.bg_completion_rate, abs=1e-8
            )

    def test_warm_start_reduces_iterations(self):
        cold = SweepEngine(algorithm="functional")
        cold.run_chain(chain())
        warm = SweepEngine(algorithm="functional", warm_start=True)
        warm.run_chain(chain())
        assert warm.stats.total_iterations < cold.stats.total_iterations
        assert warm.stats.warm_started == len(UTILIZATIONS) - 1

    def test_cached_rerun_solves_nothing(self):
        engine = SweepEngine(cache=SolveCache())
        engine.run_chain(chain())
        engine.run_chain(chain())
        assert engine.stats.solver_calls == len(UTILIZATIONS)
        assert engine.stats.cache_hits == len(UTILIZATIONS)


class TestRunChains:
    def chains(self):
        return [chain(p) for p in (0.1, 0.3, 0.6)]

    def test_serial_results(self):
        results = SweepEngine().run_chains(self.chains())
        assert len(results) == 3
        for models, solutions in zip(self.chains(), results):
            for model, solution in zip(models, solutions):
                assert (
                    solution.fg_queue_length == model.solve().fg_queue_length
                )

    def test_parallel_identical_to_serial(self):
        serial = SweepEngine(jobs=1).run_chains(self.chains())
        parallel = SweepEngine(jobs=2).run_chains(self.chains())
        for s_chain, p_chain in zip(serial, parallel):
            for s, p in zip(s_chain, p_chain):
                assert p.fg_queue_length == s.fg_queue_length
                assert p.bg_queue_length == s.bg_queue_length
                assert p.bg_completion_rate == s.bg_completion_rate

    def test_parallel_merges_stats(self):
        engine = SweepEngine(jobs=2)
        engine.run_chains(self.chains())
        assert engine.stats.solves == 3 * len(UTILIZATIONS)
        assert engine.stats.total_iterations > 0

    def test_parallel_populates_parent_cache(self):
        engine = SweepEngine(jobs=2, cache=SolveCache())
        engine.run_chains(self.chains())
        rerun = engine.run_chains(self.chains())
        assert engine.stats.cache_hits >= 3 * len(UTILIZATIONS)
        assert len(rerun) == 3

    def test_parallel_shares_disk_cache(self, tmp_path):
        first = SweepEngine(jobs=2, cache=tmp_path)
        first.run_chains(self.chains())
        second = SweepEngine(jobs=2, cache=tmp_path)
        second.run_chains(self.chains())
        assert second.stats.solver_calls == 0
        assert second.stats.cache_hits == 3 * len(UTILIZATIONS)

    def test_poisson_chain(self):
        # Degenerate one-phase arrivals go through the same machinery.
        base = FgBgModel(
            arrival=PoissonProcess(0.3 * MU), service_rate=MU, bg_probability=0.3
        )
        models = [base.at_utilization(u) for u in UTILIZATIONS]
        warm = SweepEngine(warm_start=True).run_chain(models)
        for model, solution in zip(models, warm):
            assert solution.fg_queue_length == pytest.approx(
                model.solve().fg_queue_length, abs=1e-8
            )


class TestStatsSurface:
    def test_solution_exposes_solve_stats(self):
        solution = mmpp_base().solve()
        stats = solution.solve_stats
        assert stats is not None
        assert stats.algorithm == "logarithmic-reduction"
        assert stats.iterations > 0
        assert np.isfinite(stats.spectral_radius)
