"""Tests for SweepEngine's batched solve path."""

import numpy as np
import pytest

from repro.core.batched import solve_models_batched
from repro.core.model import FgBgModel
from repro.engine import BatchGroupRecord, SolveCache, SweepEngine
from repro.processes import fit_mmpp2
from repro.qbd.batched import BatchedSolveReport
from repro.workloads.paper import SERVICE_RATE_PER_MS

MU = SERVICE_RATE_PER_MS


def mmpp_base(util: float = 0.3) -> FgBgModel:
    arrival = fit_mmpp2(rate=util * MU, scv=4.0, decay=0.8)
    return FgBgModel(arrival=arrival, service_rate=MU, bg_probability=0.3)


def sweep_models(utils=(0.1, 0.2, 0.3, 0.4, 0.5), ps=(0.1, 0.3)):
    base = mmpp_base()
    return [
        base.with_bg_probability(p).at_utilization(u)
        for p in ps
        for u in utils
    ]


class TestSolveModelsBatched:
    def test_matches_sequential_metrics(self):
        models = sweep_models()
        batched = solve_models_batched(models)
        for model, solution in zip(models, batched):
            sequential = model.solve()
            for name in (
                "fg_response_time",
                "fg_queue_length",
                "idle_probability",
            ):
                assert getattr(solution, name) == pytest.approx(
                    getattr(sequential, name), abs=1e-10
                )

    def test_groups_mixed_shapes(self):
        # p = 0 builds the chain without background states: its own group.
        models = sweep_models(ps=(0.0, 0.3))
        solutions, reports = solve_models_batched(models, return_reports=True)
        assert len(reports) == 2
        assert {r.batch_size for r in reports} == {5}
        assert all(np.isnan(s.bg_completion_rate) for s in solutions[:5])
        assert all(s.bg_completion_rate > 0 for s in solutions[5:])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            solve_models_batched([])

    def test_rejects_unstable_model_before_solving(self):
        with pytest.raises(ValueError, match="unstable"):
            solve_models_batched([mmpp_base().at_utilization(1.2)])

    def test_rejects_non_model(self):
        with pytest.raises(TypeError, match="FgBgModel"):
            solve_models_batched([object()])


class TestBatchedEngine:
    def test_run_chain_matches_sequential_engine(self):
        models = sweep_models()
        sequential = SweepEngine().run_chain(models)
        batched = SweepEngine(batched=True).run_chain(models)
        for s, b in zip(sequential, batched):
            assert b.fg_response_time == pytest.approx(
                s.fg_response_time, abs=1e-10
            )

    def test_records_batch_groups(self):
        engine = SweepEngine(batched=True)
        engine.run_chain(sweep_models(ps=(0.0, 0.3)))
        assert len(engine.stats.batch_groups) == 2
        for group in engine.stats.batch_groups:
            assert isinstance(group, BatchGroupRecord)
            assert isinstance(group.report, BatchedSolveReport)
            assert group.report.batch_size == 5
            payload = group.as_dict()
            assert payload["boundary_size"] == group.boundary_size
            assert payload["batch_size"] == 5
        # The two groups really have different shapes.
        shapes = {
            (g.boundary_size, g.phase_count)
            for g in engine.stats.batch_groups
        }
        assert len(shapes) == 2

    def test_cache_hits_skip_the_kernel(self):
        engine = SweepEngine(batched=True, cache=SolveCache())
        models = sweep_models()
        engine.run_chain(models)
        groups_after_first = len(engine.stats.batch_groups)
        engine.run_chain(models)
        assert len(engine.stats.batch_groups) == groups_after_first
        assert engine.stats.cache_hits == len(models)
        assert engine.stats.solver_calls == len(models)

    def test_duplicates_solved_once(self):
        engine = SweepEngine(batched=True)
        model = mmpp_base()
        solutions = engine.run_chain([model, model, model])
        assert engine.stats.solves == 3
        assert engine.stats.solver_calls == 1
        assert engine.stats.batch_groups[0].report.batch_size == 1
        assert solutions[0] is solutions[2]

    def test_run_chains_pools_all_chains(self):
        base = mmpp_base()
        chains = [
            [base.with_bg_probability(p).at_utilization(u) for u in (0.2, 0.4)]
            for p in (0.1, 0.3, 0.6)
        ]
        engine = SweepEngine(batched=True)
        results = engine.run_chains(chains)
        assert [len(r) for r in results] == [2, 2, 2]
        # One shape, one pooled kernel call for all six points.
        assert len(engine.stats.batch_groups) == 1
        assert engine.stats.batch_groups[0].report.batch_size == 6
        sequential = SweepEngine().run_chains(chains)
        for seq_chain, bat_chain in zip(sequential, results):
            for s, b in zip(seq_chain, bat_chain):
                assert b.fg_queue_length == pytest.approx(
                    s.fg_queue_length, abs=1e-10
                )

    def test_batch_groups_survive_summary(self):
        engine = SweepEngine(batched=True)
        engine.run_chain(sweep_models(utils=(0.2, 0.4)))
        summary = engine.stats.summary()
        assert "batch_groups" in summary
        assert summary["batch_groups"][0]["batch_size"] == 4
        engine.stats.clear()
        assert "batch_groups" not in engine.stats.summary()

    def test_solve_batch_empty(self):
        assert SweepEngine(batched=True).solve_batch([]) == []

    def test_batched_requires_logred(self):
        with pytest.raises(ValueError, match="logarithmic-reduction"):
            SweepEngine(batched=True, algorithm="newton")

    def test_repr_mentions_batched(self):
        assert "batched=True" in repr(SweepEngine(batched=True))

    def test_batched_populates_cache_for_sequential_reads(self):
        cache_engine = SweepEngine(batched=True, cache=SolveCache())
        models = sweep_models(utils=(0.2, 0.3))
        batched = cache_engine.run_chain(models)
        follower = SweepEngine(cache=cache_engine.cache)
        sequential = follower.run_chain(models)
        assert follower.stats.cache_hits == len(models)
        for s, b in zip(sequential, batched):
            assert s.fg_response_time == b.fg_response_time
