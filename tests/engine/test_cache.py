"""Tests for the content-addressed solve cache."""

import pytest

from repro.core import FgBgModel
from repro.engine import SolveCache, solve_key
from repro.processes import PoissonProcess

MU = 1 / 6.0


def model(rho=0.3, p=0.3, **kwargs):
    return FgBgModel(
        arrival=PoissonProcess(rho * MU),
        service_rate=MU,
        bg_probability=p,
        **kwargs,
    )


class TestSolveKey:
    def test_deterministic(self):
        m = model()
        assert SolveCache.key(m) == SolveCache.key(model())

    def test_depends_on_model_content(self):
        assert SolveCache.key(model(p=0.3)) != SolveCache.key(model(p=0.6))

    def test_depends_on_solver_parameters(self):
        fp = model().fingerprint()
        assert solve_key(fp, "logarithmic-reduction", 1e-12) != solve_key(
            fp, "functional", 1e-12
        )
        assert solve_key(fp, "functional", 1e-12) != solve_key(
            fp, "functional", 1e-10
        )

    def test_construction_path_irrelevant(self):
        # None (defaulting to service_rate) and an explicit equal rate
        # describe the same chain, so they share a cache entry.
        a = model(idle_wait_rate=None)
        b = model(idle_wait_rate=MU)
        assert SolveCache.key(a) == SolveCache.key(b)


class TestMemoryCache:
    def test_miss_then_hit(self):
        cache = SolveCache()
        m = model()
        key = SolveCache.key(m)
        assert cache.get(key) is None
        solution = m.solve()
        cache.put(key, solution)
        assert cache.get(key) is solution
        assert cache.hits == 1
        assert cache.misses == 1
        assert key in cache
        assert len(cache) == 1

    def test_clear(self):
        cache = SolveCache()
        key = SolveCache.key(model())
        cache.put(key, model().solve())
        cache.clear()
        assert cache.get(key) is None


class TestDiskCache:
    def test_persists_across_instances(self, tmp_path):
        m = model()
        key = SolveCache.key(m)
        solution = m.solve()

        first = SolveCache(tmp_path / "cache")
        first.put(key, solution)

        second = SolveCache(tmp_path / "cache")
        loaded = second.get(key)
        assert loaded is not None
        assert loaded.fg_queue_length == solution.fg_queue_length
        assert loaded.bg_completion_rate == solution.bg_completion_rate

    def test_clear_keeps_disk_entries(self, tmp_path):
        cache = SolveCache(tmp_path)
        key = SolveCache.key(model())
        cache.put(key, model().solve())
        cache.clear()
        assert len(cache) == 0
        assert key in cache  # still on disk
        assert cache.get(key) is not None

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "a" / "b"
        cache = SolveCache(target)
        assert cache.directory == target
        assert target.is_dir()

    def test_loaded_solution_metrics_match(self, tmp_path):
        m = model(rho=0.5, p=0.6)
        solution = m.solve()
        cache = SolveCache(tmp_path)
        cache.put(SolveCache.key(m), solution)
        cache.clear()
        loaded = cache.get(SolveCache.key(m))
        assert loaded.as_dict() == pytest.approx(solution.as_dict(), nan_ok=True)


class TestStaleTmpSweep:
    """Orphaned ``*.pkl.tmp.<pid>`` files are quarantined on open."""

    def plant(self, tmp_path, name):
        path = tmp_path / name
        path.write_bytes(b"torn write")
        return path

    def test_orphans_swept_and_quarantined_on_open(self, tmp_path):
        SolveCache(tmp_path)  # create the directory
        # 999999999 is above the kernel's default pid_max: never alive.
        dead = self.plant(tmp_path, "aaaa.pkl.tmp.999999999")
        unparsable = self.plant(tmp_path, "bbbb.pkl.tmp.notapid")
        cache = SolveCache(tmp_path)
        assert cache.stale_tmp_swept == 2
        assert not dead.exists()
        assert not unparsable.exists()
        orphans = sorted(p.name for p in tmp_path.glob("*.orphan"))
        assert orphans == [
            "aaaa.pkl.tmp.999999999.orphan",
            "bbbb.pkl.tmp.notapid.orphan",
        ]

    def test_live_writer_tmp_left_alone(self, tmp_path):
        import os

        SolveCache(tmp_path)
        live = self.plant(tmp_path, f"cccc.pkl.tmp.{os.getpid()}")
        cache = SolveCache(tmp_path)
        assert cache.stale_tmp_swept == 0
        assert live.exists()

    def test_orphans_never_served(self, tmp_path):
        self.plant(tmp_path, "dddd.pkl.tmp.999999999")
        cache = SolveCache(tmp_path)
        assert cache.get("dddd") is None
        assert "dddd" not in cache

    def test_memory_only_cache_sweeps_nothing(self):
        assert SolveCache().stale_tmp_swept == 0


class TestQuarantine:
    def test_quarantine_moves_entry_aside(self, tmp_path):
        m = model()
        key = SolveCache.key(m)
        cache = SolveCache(tmp_path)
        cache.put(key, m.solve())
        target = cache.quarantine(key)
        assert target == tmp_path / f"{key}.pkl.corrupt"
        assert target.exists()
        assert cache.quarantined == 1
        assert key not in cache
        assert cache.get(key) is None

    def test_quarantine_without_disk_entry(self, tmp_path):
        cache = SolveCache(tmp_path)
        assert cache.quarantine("nope") is None
        assert cache.quarantined == 1
