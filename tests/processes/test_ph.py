"""Tests for phase-type distributions."""

import numpy as np
import pytest

from repro.processes import PhaseType


class TestConstruction:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="probability"):
            PhaseType(np.array([0.5, 0.2]), -np.eye(2))

    def test_rejects_non_square_t(self):
        with pytest.raises(ValueError, match="square"):
            PhaseType(np.array([1.0]), np.ones((1, 2)))

    def test_rejects_positive_row_sums(self):
        t = np.array([[-1.0, 2.0], [0.0, -1.0]])
        with pytest.raises(ValueError, match="row sums"):
            PhaseType(np.array([0.5, 0.5]), t)

    def test_rejects_singular_t(self):
        t = np.array([[-1.0, 1.0], [1.0, -1.0]])  # no exit: never absorbs
        with pytest.raises(ValueError, match="singular"):
            PhaseType(np.array([0.5, 0.5]), t)


class TestExponential:
    def test_mean(self):
        assert PhaseType.exponential(0.5).mean == pytest.approx(2.0)

    def test_scv_is_one(self):
        assert PhaseType.exponential(3.0).scv == pytest.approx(1.0)

    def test_cdf(self):
        d = PhaseType.exponential(2.0)
        assert d.cdf(1.0) == pytest.approx(1 - np.exp(-2.0))

    def test_pdf(self):
        d = PhaseType.exponential(2.0)
        assert d.pdf(0.5) == pytest.approx(2.0 * np.exp(-1.0))

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="positive"):
            PhaseType.exponential(-1.0)


class TestErlang:
    def test_mean_and_scv(self):
        d = PhaseType.erlang(4, 2.0)
        assert d.mean == pytest.approx(2.0)
        assert d.scv == pytest.approx(0.25)

    def test_single_stage_is_exponential(self):
        e = PhaseType.erlang(1, 3.0)
        assert e.scv == pytest.approx(1.0)

    def test_rejects_zero_stages(self):
        with pytest.raises(ValueError, match=">= 1"):
            PhaseType.erlang(0, 1.0)


class TestHyperexponential:
    def test_moments(self):
        p = np.array([0.3, 0.7])
        mu = np.array([2.0, 0.5])
        d = PhaseType.hyperexponential(p, mu)
        assert d.mean == pytest.approx(0.3 / 2.0 + 0.7 / 0.5)
        assert d.scv > 1.0

    def test_h2_balanced_matches_targets(self):
        d = PhaseType.h2_balanced(mean=3.0, scv=4.0)
        assert d.mean == pytest.approx(3.0)
        assert d.scv == pytest.approx(4.0)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError, match="probability"):
            PhaseType.hyperexponential(np.array([0.5, 0.6]), np.array([1.0, 2.0]))


class TestNumerics:
    def test_moment_matches_variance(self):
        d = PhaseType.erlang(3, 1.5)
        assert d.variance == pytest.approx(d.moment(2) - d.mean**2)

    def test_cdf_monotone(self):
        d = PhaseType.h2_balanced(mean=1.0, scv=5.0)
        xs = np.linspace(0, 10.0, 50)
        cdf = d.cdf(xs)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] == pytest.approx(0.0)

    def test_cdf_of_negative_is_zero(self):
        assert PhaseType.exponential(1.0).cdf(-1.0) == 0.0

    def test_pdf_integrates_to_one(self):
        d = PhaseType.erlang(2, 1.0)
        xs = np.linspace(0, 40.0, 8001)
        integral = np.trapezoid(d.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-5)

    def test_sampling_mean_close(self):
        d = PhaseType.erlang(2, 1.0)
        rng = np.random.default_rng(0)
        samples = d.sample(rng, size=4000)
        assert samples.mean() == pytest.approx(d.mean, rel=0.1)
        assert np.all(samples > 0)

    def test_sampling_requires_positive_size(self):
        with pytest.raises(ValueError, match=">= 1"):
            PhaseType.exponential(1.0).sample(np.random.default_rng(0), size=0)
