"""Tests for MMPP construction and descriptors."""

import numpy as np
import pytest

from repro.processes import MMPP


class TestConstruction:
    def test_two_state_matrices_match_paper_eq4(self):
        m = MMPP.two_state(v1=0.3, v2=0.7, l1=2.0, l2=0.1)
        np.testing.assert_allclose(m.d0, [[-2.3, 0.3], [0.7, -0.8]])
        np.testing.assert_allclose(m.d1, [[2.0, 0.0], [0.0, 0.1]])

    def test_rejects_nonpositive_switching(self):
        with pytest.raises(ValueError, match="v1 must be positive"):
            MMPP.two_state(v1=0.0, v2=1.0, l1=1.0, l2=1.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError, match="non-negative"):
            MMPP.two_state(v1=1.0, v2=1.0, l1=-1.0, l2=1.0)

    def test_rejects_rate_count_mismatch(self):
        gen = np.array([[-1.0, 1.0], [1.0, -1.0]])
        with pytest.raises(ValueError, match="one arrival rate per phase"):
            MMPP(gen, np.array([1.0, 2.0, 3.0]))

    def test_from_map_matrices_roundtrip(self):
        m = MMPP.two_state(v1=0.3, v2=0.7, l1=2.0, l2=0.1)
        m2 = MMPP.from_map_matrices(m.d0, m.d1)
        assert m == m2

    def test_from_map_matrices_rejects_non_diagonal_d1(self):
        d0 = np.array([[-3.0, 1.0], [0.5, -2.0]])
        d1 = np.array([[1.0, 1.0], [0.5, 1.0]])
        with pytest.raises(ValueError, match="diagonal"):
            MMPP.from_map_matrices(d0, d1)

    def test_three_state_mmpp(self):
        gen = np.array([[-2.0, 1.0, 1.0], [1.0, -2.0, 1.0], [2.0, 1.0, -3.0]])
        m = MMPP(gen, np.array([1.0, 0.0, 5.0]))
        assert m.order == 3
        assert m.mean_rate > 0


class TestDescriptors:
    def test_mean_rate_closed_form(self):
        # lambda = (l1 v2 + l2 v1) / (v1 + v2) for the 2-state case.
        v1, v2, l1, l2 = 0.3, 0.7, 2.0, 0.1
        m = MMPP.two_state(v1=v1, v2=v2, l1=l1, l2=l2)
        np.testing.assert_allclose(
            m.mean_rate, (l1 * v2 + l2 * v1) / (v1 + v2), rtol=1e-12
        )

    def test_equal_rates_give_poisson(self):
        m = MMPP.two_state(v1=0.5, v2=0.5, l1=1.0, l2=1.0)
        np.testing.assert_allclose(m.scv, 1.0, atol=1e-10)
        np.testing.assert_allclose(m.acf(10), 0.0, atol=1e-10)

    def test_slow_switching_increases_scv(self):
        fast = MMPP.two_state(v1=10.0, v2=10.0, l1=2.0, l2=0.1)
        slow = MMPP.two_state(v1=1e-3, v2=1e-3, l1=2.0, l2=0.1)
        assert slow.scv > fast.scv

    def test_acf_decay_is_geometric(self):
        m = MMPP.two_state(v1=1e-3, v2=1e-4, l1=1.0, l2=0.05)
        acf = m.acf(10)
        ratios = acf[1:] / acf[:-1]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-8)

    def test_parameters_roundtrip(self):
        m = MMPP.two_state(v1=0.3, v2=0.7, l1=2.0, l2=0.1)
        p = m.parameters
        m2 = MMPP.two_state(**p)
        assert m == m2

    def test_parameters_requires_order_two(self):
        gen = np.array([[-2.0, 1.0, 1.0], [1.0, -2.0, 1.0], [2.0, 1.0, -3.0]])
        m = MMPP(gen, np.array([1.0, 0.0, 5.0]))
        with pytest.raises(ValueError, match="MMPP\\(2\\)"):
            _ = m.parameters

    def test_repr_two_state(self):
        assert "two_state" in repr(MMPP.two_state(v1=0.3, v2=0.7, l1=2.0, l2=0.1))
