"""Tests for MAP sample-path generation."""

import numpy as np
import pytest

from repro.processes import MAPSampler, PoissonProcess, describe_sample


class TestMAPSampler:
    def test_poisson_interarrivals_are_exponential(self, rng):
        sampler = MAPSampler(PoissonProcess(0.5), rng)
        x = sampler.interarrival_times(20000)
        assert x.mean() == pytest.approx(2.0, rel=0.05)
        s = describe_sample(x, lags=5)
        assert s.cv == pytest.approx(1.0, abs=0.05)
        assert np.all(np.abs(s.acf) < 0.05)

    def test_mmpp_matches_closed_form_mean(self, rng, mmpp_bursty):
        sampler = MAPSampler(mmpp_bursty, rng)
        x = sampler.interarrival_times(60000)
        assert x.mean() == pytest.approx(mmpp_bursty.mean_interarrival, rel=0.15)

    def test_mmpp_sample_acf_positive(self, rng, mmpp_bursty):
        sampler = MAPSampler(mmpp_bursty, rng)
        x = sampler.interarrival_times(60000)
        acf = describe_sample(x, lags=10).acf
        # Closed-form lag-1 ACF is ~0.28; sampled estimate must be clearly
        # positive and in the right ballpark.
        assert acf[0] > 0.15

    def test_arrival_times_monotone(self, rng, poisson):
        times = MAPSampler(poisson, rng).arrival_times(100)
        assert np.all(np.diff(times) > 0)

    def test_initial_phase_respected(self, rng, mmpp_bursty):
        sampler = MAPSampler(mmpp_bursty, rng, initial_phase=1)
        assert sampler.phase == 1

    def test_invalid_initial_phase(self, rng, mmpp_bursty):
        with pytest.raises(ValueError, match="out of range"):
            MAPSampler(mmpp_bursty, rng, initial_phase=5)

    def test_invalid_count(self, rng, poisson):
        with pytest.raises(ValueError, match=">= 1"):
            MAPSampler(poisson, rng).interarrival_times(0)

    def test_deterministic_given_seed(self, mmpp_bursty):
        a = MAPSampler(mmpp_bursty, np.random.default_rng(5)).interarrival_times(50)
        b = MAPSampler(mmpp_bursty, np.random.default_rng(5)).interarrival_times(50)
        np.testing.assert_array_equal(a, b)
