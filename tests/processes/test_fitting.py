"""Tests for moment/autocorrelation matching."""

import numpy as np
import pytest

from repro.processes import fit_h2_balanced, fit_ipp, fit_mmpp2_acf, fit_mmpp2_paper
from repro.processes.fitting import fit_mmpp2, max_acf1_slow_switching


class TestFitH2Balanced:
    def test_matches_mean_and_scv(self):
        p1, mu1, mu2 = fit_h2_balanced(mean=4.0, scv=9.0)
        mean = p1 / mu1 + (1 - p1) / mu2
        m2 = 2 * (p1 / mu1**2 + (1 - p1) / mu2**2)
        assert mean == pytest.approx(4.0)
        assert m2 / mean**2 - 1 == pytest.approx(9.0)

    def test_balanced_means_condition(self):
        p1, mu1, mu2 = fit_h2_balanced(mean=1.0, scv=4.0)
        assert p1 / mu1 == pytest.approx((1 - p1) / mu2)

    def test_rejects_scv_at_most_one(self):
        with pytest.raises(ValueError, match="scv > 1"):
            fit_h2_balanced(1.0, 1.0)

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError, match="positive"):
            fit_h2_balanced(0.0, 2.0)


class TestFitIPP:
    def test_matches_targets(self):
        ipp = fit_ipp(mean=75.0, scv=6.0)
        assert ipp.mean_interarrival == pytest.approx(75.0, rel=1e-9)
        assert ipp.scv == pytest.approx(6.0, rel=1e-9)

    def test_result_is_renewal(self):
        assert fit_ipp(mean=10.0, scv=3.0).is_renewal


class TestFitMMPP2:
    def test_matches_all_targets(self):
        m = fit_mmpp2(rate=0.02, scv=2.4, decay=0.99)
        assert m.mean_rate == pytest.approx(0.02, rel=1e-6)
        assert m.scv == pytest.approx(2.4, rel=1e-6)
        acf = m.acf(2)
        assert acf[1] / acf[0] == pytest.approx(0.99, abs=1e-6)

    def test_phase1_share_controls_asymmetry(self):
        a = fit_mmpp2(rate=0.01, scv=2.0, decay=0.95, phase1_share=0.5)
        b = fit_mmpp2(rate=0.01, scv=2.0, decay=0.95, phase1_share=0.8)
        assert a.parameters != b.parameters
        assert a.mean_rate == pytest.approx(b.mean_rate, rel=1e-6)

    def test_acf1_close_to_slow_switching_bound(self):
        m = fit_mmpp2(rate=1.0, scv=3.0, decay=0.995)
        bound = max_acf1_slow_switching(3.0, 0.995)
        assert m.acf_at(1) == pytest.approx(bound, rel=0.1)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(rate=-1.0, scv=2.0, decay=0.9), "rate"),
            (dict(rate=1.0, scv=0.5, decay=0.9), "scv > 1"),
            (dict(rate=1.0, scv=2.0, decay=1.5), "decay"),
            (dict(rate=1.0, scv=2.0, decay=0.9, phase1_share=0.0), "phase1_share"),
        ],
    )
    def test_input_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            fit_mmpp2(**kwargs)


class TestFitMMPP2Acf:
    def test_feasible_target_succeeds(self):
        bound = max_acf1_slow_switching(2.4, 0.99)
        m = fit_mmpp2_acf(rate=0.5, scv=2.4, acf1=bound, decay=0.99)
        assert m.acf_at(1) == pytest.approx(bound, rel=0.05)

    def test_infeasible_target_raises_with_guidance(self):
        with pytest.raises(ValueError, match="out of reach"):
            fit_mmpp2_acf(rate=0.5, scv=9.0, acf1=0.05, decay=0.99)

    def test_rejects_acf1_out_of_range(self):
        with pytest.raises(ValueError, match="0, 0.5"):
            fit_mmpp2_acf(rate=1.0, scv=2.0, acf1=0.7)


class TestFitMMPP2Paper:
    def test_matches_targets_with_fixed_l1(self):
        m = fit_mmpp2_paper(rate=0.0133, scv=2.4, acf1=0.28, l1=0.08)
        assert m.parameters["l1"] == pytest.approx(0.08)
        assert m.mean_rate == pytest.approx(0.0133, rel=1e-4)
        assert m.scv == pytest.approx(2.4, rel=1e-4)
        assert m.acf_at(1) == pytest.approx(0.28, abs=1e-4)

    def test_l1_must_exceed_rate(self):
        with pytest.raises(ValueError, match="must exceed"):
            fit_mmpp2_paper(rate=1.0, scv=2.0, acf1=0.2, l1=0.5)

    def test_rejects_low_scv(self):
        with pytest.raises(ValueError, match="scv > 1"):
            fit_mmpp2_paper(rate=0.01, scv=0.9, acf1=0.2, l1=0.1)
