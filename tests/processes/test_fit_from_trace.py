"""Tests for fitting an MMPP(2) directly from a trace (Fig. 1 -> Fig. 2)."""

import numpy as np
import pytest

from repro.processes import MAPSampler, fit_mmpp2, fit_mmpp2_from_trace
from repro.workloads import email, generate_trace


class TestRoundTrip:
    def test_recovers_email_workload(self):
        trace = generate_trace(email(), 150_000, np.random.default_rng(5))
        refit = fit_mmpp2_from_trace(trace)
        orig = email()
        assert refit.mean_rate == pytest.approx(orig.mean_rate, rel=0.03)
        assert refit.scv == pytest.approx(orig.scv, rel=0.1)
        assert refit.acf_at(1) == pytest.approx(orig.acf_at(1), rel=0.1)
        # The persistence (slow decay) must survive the round trip.
        assert refit.acf_at(50) > 0.15

    def test_recovers_fast_decay(self):
        orig = fit_mmpp2(rate=0.05, scv=1.8, decay=0.8)
        trace = MAPSampler(orig, np.random.default_rng(6)).interarrival_times(150_000)
        refit = fit_mmpp2_from_trace(trace)
        acf = refit.acf(2)
        assert acf[1] / acf[0] == pytest.approx(0.8, abs=0.1)


class TestValidation:
    def test_rejects_short_trace(self):
        with pytest.raises(ValueError, match="at least"):
            fit_mmpp2_from_trace(np.ones(10))

    def test_rejects_low_scv(self, rng):
        # Deterministic-ish inter-arrivals: SCV << 1.
        trace = rng.uniform(0.9, 1.1, size=5000)
        with pytest.raises(ValueError, match="SCV"):
            fit_mmpp2_from_trace(trace)

    def test_rejects_uncorrelated_trace(self, rng):
        # i.i.d. hyperexponential sample: SCV > 1 but zero ACF.
        u = rng.random(20000)
        trace = np.where(u < 0.9, rng.exponential(0.5, 20000), rng.exponential(10.0, 20000))
        with pytest.raises(ValueError, match="uncorrelated"):
            fit_mmpp2_from_trace(trace)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="1-D"):
            fit_mmpp2_from_trace(np.ones((100, 2)))
