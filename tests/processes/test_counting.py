"""Tests for counting-process descriptors (variance-time curve, IDC)."""

import numpy as np
import pytest

from repro.processes import MAPSampler, MMPP, PoissonProcess, fit_ipp
from repro.processes.counting import (
    counting_mean,
    counting_variance,
    empirical_idc,
    idc_limit,
    index_of_dispersion,
)


class TestPoisson:
    def test_variance_equals_mean(self):
        p = PoissonProcess(0.4)
        for t in (0.5, 3.0, 50.0):
            assert counting_variance(p, t) == pytest.approx(counting_mean(p, t))

    def test_idc_is_one(self):
        p = PoissonProcess(2.0)
        np.testing.assert_allclose(
            index_of_dispersion(p, np.array([1.0, 10.0, 100.0])), 1.0, atol=1e-10
        )

    def test_idc_limit_is_one(self):
        assert idc_limit(PoissonProcess(1.0)) == pytest.approx(1.0)


class TestMMPP:
    def setup_method(self):
        self.mmpp = MMPP.two_state(v1=1e-2, v2=1e-2, l1=1.0, l2=0.1)

    def test_variance_exceeds_mean(self):
        assert counting_variance(self.mmpp, 100.0) > counting_mean(self.mmpp, 100.0)

    def test_idc_increases_to_limit(self):
        idc = index_of_dispersion(self.mmpp, np.array([1.0, 10.0, 100.0, 1000.0]))
        assert np.all(np.diff(idc) > 0)
        assert idc[-1] < idc_limit(self.mmpp)
        assert idc[-1] == pytest.approx(idc_limit(self.mmpp), rel=0.15)

    def test_idc_starts_near_one(self):
        # Over vanishing windows any point process looks Poisson.
        assert index_of_dispersion(self.mmpp, 1e-4) == pytest.approx(1.0, abs=1e-3)

    def test_variance_at_zero(self):
        assert counting_variance(self.mmpp, 0.0) == 0.0

    def test_matches_monte_carlo(self):
        # The analytic Var[N(t)] describes the *time-stationary* counting
        # process, so each replication must start from the time-stationary
        # phase (the sampler's default is the arrival-biased embedded one).
        rng = np.random.default_rng(8)
        window = 50.0
        pi = self.mmpp.phase_stationary
        counts = []
        for _ in range(2000):
            phase = int(rng.choice(self.mmpp.order, p=pi))
            sampler = MAPSampler(self.mmpp, rng, initial_phase=phase)
            times = sampler.arrival_times(200)
            counts.append(int(np.searchsorted(times, window)))
        counts = np.asarray(counts, dtype=float)
        assert counts.mean() == pytest.approx(counting_mean(self.mmpp, window), rel=0.1)
        assert counts.var() == pytest.approx(
            counting_variance(self.mmpp, window), rel=0.2
        )

    def test_ipp_renewal_still_overdispersed(self):
        # Zero inter-arrival correlation does not mean Poisson counts: an
        # IPP is overdispersed because its marginal is hyperexponential.
        ipp = fit_ipp(mean=10.0, scv=4.0)
        assert idc_limit(ipp) > 1.5


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            counting_variance(PoissonProcess(1.0), -1.0)

    def test_idc_requires_positive_t(self):
        with pytest.raises(ValueError, match="t > 0"):
            index_of_dispersion(PoissonProcess(1.0), 0.0)


class TestEmpiricalIDC:
    def test_poisson_near_one(self, rng):
        times = np.cumsum(rng.exponential(1.0, size=60_000))
        assert empirical_idc(times, window=20.0) == pytest.approx(1.0, abs=0.25)

    def test_bursty_mmpp_above_one(self, rng):
        mmpp = MMPP.two_state(v1=1e-2, v2=1e-2, l1=1.0, l2=0.05)
        times = MAPSampler(mmpp, rng).arrival_times(60_000)
        assert empirical_idc(times, window=200.0) > 3.0

    def test_rejects_bad_window(self, rng):
        times = np.cumsum(rng.exponential(1.0, size=100))
        with pytest.raises(ValueError, match="positive"):
            empirical_idc(times, window=0.0)
        with pytest.raises(ValueError, match="fewer than 2"):
            empirical_idc(times, window=1e9)
