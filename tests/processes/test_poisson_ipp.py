"""Tests for Poisson and Interrupted Poisson processes."""

import numpy as np
import pytest

from repro.processes import InterruptedPoissonProcess, PoissonProcess


class TestPoisson:
    def test_rate(self):
        assert PoissonProcess(0.25).mean_rate == pytest.approx(0.25)

    def test_scv_is_one(self):
        assert PoissonProcess(3.0).scv == pytest.approx(1.0)

    def test_acf_is_zero(self):
        np.testing.assert_allclose(PoissonProcess(3.0).acf(10), 0.0, atol=1e-12)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="positive"):
            PoissonProcess(0.0)

    def test_scaling_preserves_type(self):
        s = PoissonProcess(1.0).scaled_to_rate(4.0)
        assert isinstance(s, PoissonProcess)
        assert s.rate == pytest.approx(4.0)


class TestIPP:
    def test_is_renewal(self):
        assert InterruptedPoissonProcess(1.0, 0.1, 0.2).is_renewal

    def test_acf_is_zero(self):
        ipp = InterruptedPoissonProcess(1.0, 0.1, 0.2)
        np.testing.assert_allclose(ipp.acf(20), 0.0, atol=1e-10)

    def test_scv_exceeds_one(self):
        assert InterruptedPoissonProcess(1.0, 0.1, 0.2).scv > 1.0

    def test_off_phase_produces_no_arrivals(self):
        ipp = InterruptedPoissonProcess(1.0, 0.1, 0.2)
        assert ipp.arrival_rates[1] == 0.0

    def test_accessors(self):
        ipp = InterruptedPoissonProcess(1.5, 0.1, 0.2)
        assert ipp.rate_on == pytest.approx(1.5)
        assert ipp.on_to_off == pytest.approx(0.1)
        assert ipp.off_to_on == pytest.approx(0.2)

    def test_mean_rate_closed_form(self):
        # lambda = rate_on * pi_on, pi_on = off_to_on / (on_to_off + off_to_on).
        ipp = InterruptedPoissonProcess(2.0, 0.3, 0.6)
        np.testing.assert_allclose(ipp.mean_rate, 2.0 * 0.6 / 0.9, rtol=1e-12)

    def test_from_hyperexponential_matches_h2_moments(self):
        p1, mu1, mu2 = 0.8, 2.0, 0.25
        ipp = InterruptedPoissonProcess.from_hyperexponential(p1, mu1, mu2)
        h2_mean = p1 / mu1 + (1 - p1) / mu2
        h2_m2 = 2 * (p1 / mu1**2 + (1 - p1) / mu2**2)
        np.testing.assert_allclose(ipp.mean_interarrival, h2_mean, rtol=1e-10)
        np.testing.assert_allclose(
            ipp.interarrival_moment(2), h2_m2, rtol=1e-10
        )

    def test_from_hyperexponential_rejects_equal_rates(self):
        with pytest.raises(ValueError, match="Poisson process"):
            InterruptedPoissonProcess.from_hyperexponential(0.5, 1.0, 1.0)

    def test_from_hyperexponential_rejects_bad_p(self):
        with pytest.raises(ValueError, match="strictly in"):
            InterruptedPoissonProcess.from_hyperexponential(1.2, 1.0, 2.0)

    def test_scaling_preserves_type(self):
        ipp = InterruptedPoissonProcess(1.0, 0.1, 0.2).scaled_by(2.0)
        assert isinstance(ipp, InterruptedPoissonProcess)
