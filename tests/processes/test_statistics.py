"""Tests for empirical ACF/CV estimators."""

import numpy as np
import pytest

from repro.processes import autocorrelation, coefficient_of_variation, describe_sample


class TestAutocorrelation:
    def test_iid_series_has_small_acf(self, rng):
        x = rng.exponential(1.0, size=20000)
        acf = autocorrelation(x, 10)
        assert np.all(np.abs(acf) < 0.05)

    def test_ar1_series_recovers_coefficient(self, rng):
        phi = 0.8
        n = 60000
        x = np.empty(n)
        x[0] = 0.0
        noise = rng.normal(size=n)
        for i in range(1, n):
            x[i] = phi * x[i - 1] + noise[i]
        acf = autocorrelation(x, 3)
        np.testing.assert_allclose(acf, [phi, phi**2, phi**3], atol=0.03)

    def test_alternating_series_negative_lag1(self):
        x = np.tile([1.0, -1.0], 500)
        acf = autocorrelation(x, 2)
        assert acf[0] < -0.9
        assert acf[1] > 0.9

    def test_bounded_by_one(self, rng):
        x = rng.normal(size=512)
        acf = autocorrelation(x, 100)
        assert np.all(np.abs(acf) <= 1.0 + 1e-12)

    def test_constant_series_is_zero(self):
        np.testing.assert_array_equal(autocorrelation(np.ones(100), 5), np.zeros(5))

    def test_matches_naive_estimator(self, rng):
        x = rng.exponential(1.0, size=257)
        acf = autocorrelation(x, 5)
        c = x - x.mean()
        denom = c @ c
        naive = [c[:-k] @ c[k:] / denom for k in range(1, 6)]
        np.testing.assert_allclose(acf, naive, atol=1e-10)

    def test_rejects_bad_lags(self):
        with pytest.raises(ValueError, match=">= 1"):
            autocorrelation(np.ones(10), 0)
        with pytest.raises(ValueError, match="smaller than"):
            autocorrelation(np.ones(10), 10)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            autocorrelation(np.ones((5, 2)), 1)


class TestCoefficientOfVariation:
    def test_exponential_cv_near_one(self, rng):
        x = rng.exponential(2.0, size=100000)
        assert coefficient_of_variation(x) == pytest.approx(1.0, abs=0.02)

    def test_constant_series_cv_zero(self):
        assert coefficient_of_variation(np.full(10, 3.0)) == 0.0

    def test_rejects_zero_mean(self):
        with pytest.raises(ValueError, match="zero-mean"):
            coefficient_of_variation(np.array([-1.0, 1.0]))

    def test_rejects_short_series(self):
        with pytest.raises(ValueError, match="at least 2"):
            coefficient_of_variation(np.array([1.0]))


class TestDescribeSample:
    def test_summary_fields(self, rng):
        x = rng.exponential(1.0, size=1000)
        s = describe_sample(x, lags=20)
        assert s.count == 1000
        assert s.mean == pytest.approx(x.mean())
        assert s.acf.shape == (20,)
        assert s.scv == pytest.approx(s.cv**2)

    def test_lags_clamped_to_series_length(self):
        s = describe_sample(np.array([1.0, 2.0, 3.0]), lags=50)
        assert s.acf.shape == (2,)
