"""Tests for the MAP base class."""

import numpy as np
import pytest

from repro.processes import MMPP, MarkovianArrivalProcess, PoissonProcess


def make_map() -> MarkovianArrivalProcess:
    d0 = np.array([[-3.0, 1.0], [0.5, -2.0]])
    d1 = np.array([[1.0, 1.0], [0.5, 1.0]])
    return MarkovianArrivalProcess(d0, d1)


class TestConstruction:
    def test_valid_map_accepted(self):
        m = make_map()
        assert m.order == 2

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            MarkovianArrivalProcess(np.eye(2) * -1, np.ones((3, 3)))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            MarkovianArrivalProcess(np.ones((2, 3)), np.ones((2, 3)))

    def test_rejects_negative_d1(self):
        d0 = np.array([[-1.0, 2.0], [1.0, -2.0]])
        d1 = np.array([[0.0, -1.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="non-negative"):
            MarkovianArrivalProcess(d0, d1)

    def test_rejects_negative_offdiagonal_d0(self):
        d0 = np.array([[-1.0, -0.5], [1.0, -2.0]])
        d1 = np.array([[1.5, 0.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="off-diagonal"):
            MarkovianArrivalProcess(d0, d1)

    def test_rejects_bad_row_sums(self):
        d0 = np.array([[-3.0, 1.0], [0.5, -2.0]])
        d1 = np.array([[1.0, 2.0], [0.5, 1.0]])
        with pytest.raises(ValueError):
            MarkovianArrivalProcess(d0, d1)

    def test_rejects_zero_d1(self):
        d0 = np.array([[-1.0, 1.0], [1.0, -1.0]])
        with pytest.raises(ValueError, match="never produces arrivals"):
            MarkovianArrivalProcess(d0, np.zeros((2, 2)))

    def test_matrices_are_read_only(self):
        m = make_map()
        with pytest.raises(ValueError):
            m.d0[0, 0] = 5.0


class TestDescriptors:
    def test_mean_rate_equals_inverse_mean_interarrival(self):
        m = make_map()
        np.testing.assert_allclose(m.mean_rate, 1.0 / m.mean_interarrival, rtol=1e-12)

    def test_phase_stationary_solves_balance(self):
        m = make_map()
        np.testing.assert_allclose(
            m.phase_stationary @ m.generator, np.zeros(2), atol=1e-12
        )

    def test_embedded_stationary_is_left_eigenvector(self):
        m = make_map()
        pi_e = m.embedded_stationary
        np.testing.assert_allclose(pi_e @ m.embedded_transition, pi_e, atol=1e-12)
        np.testing.assert_allclose(pi_e.sum(), 1.0, atol=1e-12)

    def test_embedded_transition_is_stochastic(self):
        m = make_map()
        np.testing.assert_allclose(m.embedded_transition.sum(axis=1), 1.0, atol=1e-12)

    def test_moment_ordering(self):
        m = make_map()
        assert m.interarrival_moment(2) > m.interarrival_moment(1) ** 2

    def test_invalid_moment_order(self):
        with pytest.raises(ValueError, match=">= 1"):
            make_map().interarrival_moment(0)

    def test_scv_positive(self):
        assert make_map().scv > 0

    def test_cv_is_sqrt_of_scv(self):
        m = make_map()
        np.testing.assert_allclose(m.cv**2, m.scv, rtol=1e-12)

    def test_acf_within_bounds(self):
        acf = make_map().acf(50)
        assert np.all(acf <= 1.0) and np.all(acf >= -1.0)

    def test_acf_invalid_lags(self):
        with pytest.raises(ValueError, match=">= 1"):
            make_map().acf(0)

    def test_acf_at_matches_acf_array(self):
        m = make_map()
        np.testing.assert_allclose(m.acf_at(7), m.acf(10)[6], rtol=1e-12)


class TestScaling:
    def test_scaled_by_changes_rate_only(self):
        m = make_map()
        s = m.scaled_by(3.0)
        np.testing.assert_allclose(s.mean_rate, 3.0 * m.mean_rate, rtol=1e-12)
        np.testing.assert_allclose(s.scv, m.scv, rtol=1e-12)
        np.testing.assert_allclose(s.acf(20), m.acf(20), atol=1e-12)

    def test_scaled_to_rate(self):
        s = make_map().scaled_to_rate(0.25)
        np.testing.assert_allclose(s.mean_rate, 0.25, rtol=1e-12)

    def test_scaled_to_utilization(self):
        s = make_map().scaled_to_utilization(0.8, service_rate=2.0)
        np.testing.assert_allclose(s.mean_rate, 1.6, rtol=1e-12)

    def test_scaling_preserves_subclass(self):
        m = MMPP.two_state(v1=1.0, v2=2.0, l1=3.0, l2=0.5)
        assert isinstance(m.scaled_by(2.0), MMPP)

    def test_invalid_factor_raises(self):
        with pytest.raises(ValueError, match="positive"):
            make_map().scaled_by(0.0)

    def test_invalid_utilization_raises(self):
        with pytest.raises(ValueError, match="positive"):
            make_map().scaled_to_utilization(-0.1, 1.0)


class TestSuperposition:
    def test_superposed_rate_adds(self):
        a = PoissonProcess(0.3)
        b = PoissonProcess(0.7)
        s = a.superpose(b)
        np.testing.assert_allclose(s.mean_rate, 1.0, rtol=1e-12)

    def test_superposed_poissons_remain_poisson_like(self):
        s = PoissonProcess(0.3).superpose(PoissonProcess(0.7))
        np.testing.assert_allclose(s.scv, 1.0, atol=1e-10)
        np.testing.assert_allclose(s.acf(5), 0.0, atol=1e-10)

    def test_superposition_order(self):
        a = MMPP.two_state(v1=1.0, v2=2.0, l1=3.0, l2=0.5)
        s = a.superpose(PoissonProcess(1.0))
        assert s.order == 2


class TestRenewalDetection:
    def test_poisson_is_renewal(self):
        assert PoissonProcess(1.0).is_renewal

    def test_bursty_mmpp_is_not_renewal(self):
        assert not MMPP.two_state(v1=1e-3, v2=1e-3, l1=1.0, l2=0.01).is_renewal


class TestDunder:
    def test_equality_and_hash(self):
        a = make_map()
        b = make_map()
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert make_map() != PoissonProcess(1.0)

    def test_repr_contains_rate(self):
        assert "rate=" in repr(make_map())
