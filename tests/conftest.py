"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.processes import MMPP, PoissonProcess


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for reproducible tests."""
    return np.random.default_rng(20060101)


@pytest.fixture
def poisson() -> PoissonProcess:
    """A plain Poisson process at rate 0.1/ms."""
    return PoissonProcess(0.1)


@pytest.fixture
def mmpp_bursty() -> MMPP:
    """A small bursty MMPP(2) with visible autocorrelation."""
    return MMPP.two_state(v1=2e-4, v2=2e-5, l1=8e-2, l2=7e-3)


def assert_distribution(pi: np.ndarray, atol: float = 1e-9) -> None:
    """Assert that ``pi`` is a probability vector."""
    assert np.all(pi >= -atol), f"negative probabilities: min={pi.min()}"
    np.testing.assert_allclose(pi.sum(), 1.0, atol=1e-8)
