"""Unit tests of the individual contract validators."""

import numpy as np
import pytest

from repro.contracts import (
    ContractViolation,
    certify_spectral_radius_below_one,
    check_drift_stable,
    check_finite,
    check_generator,
    check_nonnegative,
    check_probability_vector,
    check_r_matrix,
    check_readonly,
    check_shape,
    check_stochastic,
    check_substochastic,
    contracted,
    contracts_enabled,
)
from repro.contracts.checks import ENV_SWITCH

MM1_A0 = np.array([[0.05]])  # arrivals (up)
MM1_A1 = np.array([[-(0.05 + 1 / 6.0)]])
MM1_A2 = np.array([[1 / 6.0]])  # services (down)


class TestErrorType:
    def test_is_a_value_error(self):
        # Call sites that previously raised ValueError keep their catchers.
        assert issubclass(ContractViolation, ValueError)

    def test_carries_structured_fields(self):
        err = ContractViolation("check_generator", "Q", "row 0 sums to 1")
        assert err.check == "check_generator"
        assert err.subject == "Q"
        assert "row 0" in err.detail
        assert str(err) == "[check_generator] Q: row 0 sums to 1"


class TestSwitch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_SWITCH, raising=False)
        assert contracts_enabled()

    @pytest.mark.parametrize("value", ["off", "0", "false", "no", "OFF", " Off "])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_SWITCH, value)
        assert not contracts_enabled()

    @pytest.mark.parametrize("value", ["on", "1", "yes", ""])
    def test_other_values_keep_contracts_on(self, monkeypatch, value):
        monkeypatch.setenv(ENV_SWITCH, value)
        assert contracts_enabled()

    def test_disabled_checks_are_noops(self, monkeypatch):
        monkeypatch.setenv(ENV_SWITCH, "off")
        check_generator(np.array([[1.0, 1.0], [0.0, 5.0]]), "garbage")
        check_r_matrix(np.array([[2.0]]), "sp=2")
        check_probability_vector(np.array([-1.0, 3.0]), "not a pmf")


class TestMatrixChecks:
    def test_finite_rejects_nan(self):
        with pytest.raises(ContractViolation, match=r"\[check_finite\]"):
            check_finite(np.array([1.0, np.nan]), "v")

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ContractViolation, match="negative entry"):
            check_nonnegative(np.array([[0.0, -1e-3]]), "B")

    def test_nonnegative_tolerates_roundoff(self):
        check_nonnegative(np.array([[0.0, -1e-12]]), "B")

    def test_shape_mismatch(self):
        with pytest.raises(ContractViolation, match="expected shape"):
            check_shape(np.zeros((2, 2)), (3, 3), "seed")

    def test_readonly_rejects_writeable(self):
        with pytest.raises(ContractViolation, match="writeable"):
            check_readonly(np.zeros(3), "d0")

    def test_readonly_accepts_flagged(self):
        a = np.zeros(3)
        a.setflags(write=False)
        check_readonly(a, "d0")

    def test_generator_accepts_valid(self):
        check_generator(np.array([[-1.0, 1.0], [2.0, -2.0]]), "Q")

    def test_generator_rejects_nonzero_rows(self):
        q = np.array([[-1.0, 1.0 + 1e-3], [2.0, -2.0]])
        with pytest.raises(ContractViolation, match="sums to"):
            check_generator(q, "Q")

    def test_generator_rejects_negative_off_diagonal(self):
        q = np.array([[-1.0, 1.0], [-0.5, 0.5]])
        with pytest.raises(ContractViolation, match="off-diagonal"):
            check_generator(q, "Q")

    def test_generator_scales_tolerance_with_rates(self):
        # A fast chain: row-sum residual of 1e-6 against rates of 1e4 is
        # roundoff, not a modelling error.
        q = np.array([[-1e4, 1e4 + 1e-6], [1e4, -1e4]])
        check_generator(q, "fast Q")

    def test_stochastic(self):
        check_stochastic(np.array([[0.5, 0.5]]), "P")
        with pytest.raises(ContractViolation, match="expected 1"):
            check_stochastic(np.array([[0.5, 0.6]]), "P")

    def test_substochastic(self):
        check_substochastic(np.array([[0.5, 0.2]]), "P")
        with pytest.raises(ContractViolation, match="> 1"):
            check_substochastic(np.array([[0.8, 0.7]]), "P")

    def test_probability_vector_total(self):
        check_probability_vector(np.array([0.25, 0.75]), "pi")
        with pytest.raises(ContractViolation, match="mass"):
            check_probability_vector(np.array([0.25, 0.25]), "pi")

    def test_probability_vector_partial_mass(self):
        # total=None: a boundary slice of the stationary vector.
        check_probability_vector(np.array([0.1, 0.2]), "pi_boundary", total=None)
        with pytest.raises(ContractViolation, match="negative"):
            check_probability_vector(np.array([-0.1, 0.2]), "pi", total=None)


class TestRMatrixCheck:
    def test_accepts_contraction(self):
        check_r_matrix(np.array([[0.3, 0.1], [0.0, 0.2]]), "R")

    def test_rejects_spectral_radius_one_or_more(self):
        with pytest.raises(ContractViolation, match="spectral radius"):
            check_r_matrix(np.array([[1.01]]), "R")

    def test_rejects_negative_entries(self):
        with pytest.raises(ContractViolation, match="negative entry"):
            check_r_matrix(np.array([[0.5, -0.2], [0.0, 0.1]]), "R")

    def test_rejects_nan(self):
        with pytest.raises(ContractViolation, match="non-finite"):
            check_r_matrix(np.array([[np.nan]]), "R")

    def test_accepts_norm_exceeding_contraction(self):
        # ||R||_inf > 1 but sp(R) < 1: the Collatz-Wielandt tier must
        # certify it without raising.
        check_r_matrix(np.array([[0.1, 0.95], [0.05, 0.1]]), "R")

    def test_certificate_cache_cannot_false_pass(self):
        # Prime the per-order certificate cache with a stable matrix, then
        # present an unstable one of the same order: for any positive x,
        # max(Rx/x) >= sp(R), so a cached vector can only fail to certify.
        check_r_matrix(np.array([[0.1, 0.95], [0.05, 0.1]]), "R")
        with pytest.raises(ContractViolation, match="spectral radius"):
            check_r_matrix(np.array([[0.1, 1.2], [1.2, 0.1]]), "R")


class TestSpectralRadiusCertificate:
    def test_inf_norm_fast_path(self):
        assert certify_spectral_radius_below_one(
            np.array([[0.3, 0.1], [0.0, 0.2]])
        )

    def test_collatz_wielandt_tier(self):
        # ||R||_inf > 1 but sp(R) < 1: needs a tier beyond the norm.
        assert certify_spectral_radius_below_one(
            np.array([[0.1, 0.95], [0.05, 0.1]])
        )

    def test_rejects_radius_at_least_one(self):
        assert not certify_spectral_radius_below_one(np.array([[1.0]]))
        assert not certify_spectral_radius_below_one(
            np.array([[0.1, 1.2], [1.2, 0.1]])
        )

    def test_matches_eigenvalue_oracle_on_random_matrices(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            n = rng.integers(1, 6)
            r = rng.uniform(0.0, 0.6, size=(n, n))
            certified = certify_spectral_radius_below_one(r)
            truth = float(np.max(np.abs(np.linalg.eigvals(r)))) < 1.0
            assert certified == truth

    def test_runs_with_contracts_disabled(self, monkeypatch):
        # A boolean query, not a gated check: callers (the warm-start
        # minimality test) rely on it regardless of the switch.
        monkeypatch.setenv(ENV_SWITCH, "off")
        assert certify_spectral_radius_below_one(np.array([[0.5]]))
        assert not certify_spectral_radius_below_one(np.array([[2.0]]))


class TestDriftCheck:
    def test_stable_mm1_passes(self):
        check_drift_stable(MM1_A0, MM1_A1, MM1_A2)

    def test_unstable_mm1_fails(self):
        a0 = np.array([[0.5]])  # lambda > mu
        a1 = np.array([[-(0.5 + 1 / 6.0)]])
        with pytest.raises(ContractViolation, match="not positive recurrent"):
            check_drift_stable(a0, a1, MM1_A2)


class TestContractedDecorator:
    def test_pre_and_post_run_when_enabled(self):
        calls = []

        @contracted(
            pre=lambda x: calls.append(("pre", x)),
            post=lambda result, x: calls.append(("post", result)),
        )
        def double(x):
            return 2 * x

        assert double(3) == 6
        assert calls == [("pre", 3), ("post", 6)]

    def test_disabled_skips_hooks(self, monkeypatch):
        monkeypatch.setenv(ENV_SWITCH, "off")
        calls = []

        @contracted(pre=lambda x: calls.append("pre"))
        def ident(x):
            return x

        assert ident(7) == 7
        assert calls == []

    def test_pre_violation_blocks_call(self):
        ran = []

        def reject(x):
            raise ContractViolation("check_pre", "x", "rejected")

        @contracted(pre=reject)
        def body(x):
            ran.append(x)

        with pytest.raises(ContractViolation):
            body(1)
        assert ran == []
