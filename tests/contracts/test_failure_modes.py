"""End-to-end contract failure modes required by the contract layer.

Each scenario corrupts one link of the analytic chain and asserts that
the failure is a typed :class:`ContractViolation` *naming the offending
matrix and the violated check* -- not a numpy warning, not a silent wrong
number.
"""

import pickle

import numpy as np
import pytest

from repro.contracts import ContractViolation, check_r_matrix, check_solution
from repro.core import FgBgModel
from repro.engine import SolveCache
from repro.processes import PoissonProcess
from repro.qbd.rmatrix import r_matrix

MU = 1 / 6.0


def model(rho=0.3, p=0.3, **kwargs):
    return FgBgModel(
        arrival=PoissonProcess(rho * MU),
        service_rate=MU,
        bg_probability=p,
        **kwargs,
    )


def mm1_blocks(lam=0.05, mu=MU):
    a0 = np.array([[lam]])
    a1 = np.array([[-(lam + mu)]])
    a2 = np.array([[mu]])
    return a0, a1, a2


class TestCorruptGenerator:
    def test_row_sum_residual_names_matrix_and_check(self):
        # Rows of A0+A1+A2 sum to 1e-6 instead of 0: six orders of
        # magnitude above roundoff for O(0.1) rates.
        a0, a1, a2 = mm1_blocks()
        a1 = a1 + 1e-6
        with pytest.raises(ContractViolation) as excinfo:
            r_matrix(a0, a1, a2)
        assert excinfo.value.check == "check_generator"
        assert excinfo.value.subject == "A0+A1+A2"
        assert "sums to" in excinfo.value.detail

    def test_negative_block_entry_is_caught(self):
        a0, a1, a2 = mm1_blocks()
        a0 = np.array([[-0.05]])
        with pytest.raises(ContractViolation) as excinfo:
            r_matrix(a0, a1, a2)
        assert excinfo.value.subject == "A0"


class TestNonMinimalR:
    def test_sp_101_names_check(self):
        r = np.array([[1.01]])
        with pytest.raises(ContractViolation) as excinfo:
            check_r_matrix(r, "R")
        assert excinfo.value.check == "check_r_matrix"
        assert excinfo.value.subject == "R"
        assert "spectral radius" in excinfo.value.detail

    def test_boundary_case_sp_exactly_one_rejected(self):
        with pytest.raises(ContractViolation, match="spectral radius"):
            check_r_matrix(np.eye(2), "R")


class TestCorruptedCachePickle:
    def solved_disk_cache(self, tmp_path):
        cache = SolveCache(tmp_path)
        m = model()
        key = SolveCache.key(m)
        cache.put(key, m.solve())
        return key, cache

    def fresh(self, tmp_path):
        # A second cache over the same directory: empty memory layer, so
        # get() must go to disk.
        return SolveCache(tmp_path)

    def test_truncated_pickle_raises_typed_error(self, tmp_path):
        key, cache = self.solved_disk_cache(tmp_path)
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(ContractViolation) as excinfo:
            self.fresh(tmp_path).get(key)
        assert excinfo.value.check == "check_solution"
        assert key[:16] in excinfo.value.subject

    def test_scribbled_payload_fails_validation(self, tmp_path):
        key, cache = self.solved_disk_cache(tmp_path)
        path = tmp_path / f"{key}.pkl"
        with path.open("wb") as fh:
            pickle.dump("not a solution at all", fh)
        with pytest.raises(ContractViolation, match="FgBgSolution"):
            self.fresh(tmp_path).get(key)

    def test_tampered_r_matrix_fails_validation(self, tmp_path):
        key, cache = self.solved_disk_cache(tmp_path)
        path = tmp_path / f"{key}.pkl"
        with path.open("rb") as fh:
            solution = pickle.load(fh)
        r = solution.qbd_solution.r.copy()
        r[0, 0] = 1.5  # sp(R) > 1: the geometric tail no longer sums
        solution.qbd_solution._r = r
        with path.open("wb") as fh:
            pickle.dump(solution, fh)
        with pytest.raises(ContractViolation, match="spectral radius"):
            self.fresh(tmp_path).get(key)

    def test_intact_entry_loads_and_validates(self, tmp_path):
        key, _ = self.solved_disk_cache(tmp_path)
        loaded = self.fresh(tmp_path).get(key)
        assert loaded is not None
        check_solution(loaded)

    def test_off_switch_skips_validation(self, tmp_path, monkeypatch):
        key, _ = self.solved_disk_cache(tmp_path)
        path = tmp_path / f"{key}.pkl"
        with path.open("wb") as fh:
            pickle.dump("not a solution at all", fh)
        monkeypatch.setenv("REPRO_CONTRACTS", "off")
        # The pickle is readable, just wrong; with contracts off it is
        # returned as-is (the caller opted out of validation).
        assert self.fresh(tmp_path).get(key) == "not a solution at all"


class TestWrongShapeWarmStart:
    def test_seed_shape_mismatch_names_seed(self):
        a0, a1, a2 = mm1_blocks()
        with pytest.raises(ContractViolation) as excinfo:
            r_matrix(a0, a1, a2, initial_r=np.zeros((3, 3)))
        assert excinfo.value.check == "check_shape"
        assert excinfo.value.subject == "initial_r"
        assert "(1, 1)" in excinfo.value.detail
        assert "(3, 3)" in excinfo.value.detail

    def test_shape_check_survives_off_switch(self, monkeypatch):
        # Deliberately unconditional: with contracts off, a bad seed would
        # otherwise crash deep inside the iteration with a broadcast error.
        monkeypatch.setenv("REPRO_CONTRACTS", "off")
        a0, a1, a2 = mm1_blocks()
        with pytest.raises(ContractViolation, match="initial_r"):
            r_matrix(a0, a1, a2, initial_r=np.zeros((3, 3)))

    def test_nan_seed_rejected(self):
        a0, a1, a2 = mm1_blocks()
        with pytest.raises(ContractViolation, match="non-finite"):
            r_matrix(a0, a1, a2, initial_r=np.array([[np.nan]]))


class TestModelLevelContracts:
    def test_model_solve_passes_contracts(self):
        solution = model().solve()
        check_solution(solution)

    def test_contracts_off_reproduces_same_numbers(self, monkeypatch):
        reference = model().solve()
        monkeypatch.setenv("REPRO_CONTRACTS", "off")
        unchecked = model().solve()
        assert unchecked.fg_queue_length == pytest.approx(
            reference.fg_queue_length, rel=1e-12
        )
        assert unchecked.fg_response_time == pytest.approx(
            reference.fg_response_time, rel=1e-12
        )
