"""Validate the analytic model against the discrete-event simulator.

Solves the QBD and simulates the identical system side by side for a few
configurations (Poisson and correlated arrivals, both scheduling modes)
and prints every shared metric with its relative deviation.

Run:  python examples/validate_model.py           (~1 minute)
      python examples/validate_model.py --fast    (noisier, ~10 s)
"""

import argparse

import numpy as np

from repro import FgBgModel, workloads
from repro.core import BgServiceMode
from repro.processes import PoissonProcess
from repro.sim import FgBgSimulator

METRICS = (
    "fg_queue_length",
    "bg_queue_length",
    "fg_delayed_fraction",
    "bg_completion_rate",
    "fg_server_share",
    "bg_server_share",
    "fg_response_time",
)


def cases(service_rate: float) -> dict[str, FgBgModel]:
    email = workloads.email()
    return {
        "Poisson, p=0.3, 40% load": FgBgModel(
            arrival=PoissonProcess(0.4 * service_rate),
            service_rate=service_rate,
            bg_probability=0.3,
        ),
        "E-mail MMPP, p=0.6, 30% load": FgBgModel(
            arrival=email.scaled_to_utilization(0.3, service_rate),
            service_rate=service_rate,
            bg_probability=0.6,
        ),
        "Poisson, p=0.9, rewait mode": FgBgModel(
            arrival=PoissonProcess(0.5 * service_rate),
            service_rate=service_rate,
            bg_probability=0.9,
            bg_mode=BgServiceMode.REWAIT,
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="shorter simulations")
    args = parser.parse_args()
    horizon = 400_000.0 if args.fast else 3_000_000.0

    service_rate = workloads.SERVICE_RATE_PER_MS
    for name, model in cases(service_rate).items():
        analytic = model.solve()
        simulated = FgBgSimulator(model).run(horizon, np.random.default_rng(2006))
        print(f"\n=== {name} (horizon {horizon:g} ms) ===")
        print(f"{'metric':<24} {'analytic':>12} {'simulated':>12} {'rel.dev':>9}")
        for metric in METRICS:
            a = getattr(analytic, metric)
            s = getattr(simulated, metric)
            dev = abs(s - a) / a if a else 0.0
            print(f"{metric:<24} {a:>12.5f} {s:>12.5f} {dev:>9.2%}")


if __name__ == "__main__":
    main()
