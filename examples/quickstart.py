"""Quickstart: solve the foreground/background model for one workload.

Builds the paper's model for the E-mail workload at 30% foreground load
with WRITE verification enabled for 30% of requests, prints every metric,
and shows how a load sweep is done.

Run:  python examples/quickstart.py
"""

from repro import FgBgModel, workloads


def main() -> None:
    service_rate = workloads.SERVICE_RATE_PER_MS  # the paper's 6 ms disk

    model = FgBgModel(
        arrival=workloads.email().scaled_to_utilization(0.30, service_rate),
        service_rate=service_rate,
        bg_probability=0.3,  # 30% of foreground jobs spawn a verification
    )
    solution = model.solve()

    print("Model:", model)
    print()
    print(solution.summary())
    print()

    print("Load sweep (E-mail workload, p = 0.3):")
    print(f"{'util':>6} {'FG qlen':>10} {'FG delayed':>11} {'BG completion':>14}")
    for util in (0.1, 0.2, 0.3, 0.4, 0.5):
        s = model.at_utilization(util).solve()
        print(
            f"{util:>6.0%} {s.fg_queue_length:>10.3f} "
            f"{s.fg_delayed_fraction:>11.2%} {s.bg_completion_rate:>14.2%}"
        )


if __name__ == "__main__":
    main()
