"""Percentile-based capacity planning from queue-length distributions.

Means hide tails: two configurations with similar average queue lengths
can differ wildly at the 99th percentile, and storage SLOs are set on
tails.  The matrix-geometric solution gives the complete queue-length
distribution for free; this example plans the background budget against a
tail SLO ("at most 4 foreground jobs queued, 99% of the time") instead of
a mean, and contrasts the answer across dependence structures.

Run:  python examples/latency_percentiles.py
"""

from repro import FgBgModel, workloads
from repro.core import fg_queue_length_pmf, fg_queue_length_quantile
from repro.workloads import dependence_comparators

#: SLO: the 0.99 quantile of the foreground queue length must not exceed...
QUANTILE = 0.99
MAX_QLEN_99 = 4

UTILIZATION = 0.30


def max_bg_probability(arrival, service_rate: float) -> float:
    """Largest p (to 0.05) keeping the 99th-percentile queue under the SLO."""
    scaled = arrival.scaled_to_utilization(UTILIZATION, service_rate)
    best = 0.0
    p = 0.05
    while p <= 1.0:
        solution = FgBgModel(
            arrival=scaled, service_rate=service_rate, bg_probability=p
        ).solve()
        if fg_queue_length_quantile(solution, QUANTILE) <= MAX_QLEN_99:
            best = p
        else:
            break
        p = round(p + 0.05, 2)
    return best


def main() -> None:
    service_rate = workloads.SERVICE_RATE_PER_MS

    print(f"Foreground load {UTILIZATION:.0%}; SLO: P(N_FG <= {MAX_QLEN_99}) >= {QUANTILE:.0%}\n")

    print("Distribution shape at p = 0.3 (High ACF vs Poisson):")
    comparators = dependence_comparators("email")
    rows = {}
    for key in ("high_acf", "expo"):
        arrival = comparators[key].scaled_to_utilization(UTILIZATION, service_rate)
        solution = FgBgModel(
            arrival=arrival, service_rate=service_rate, bg_probability=0.3
        ).solve()
        rows[key] = (
            fg_queue_length_pmf(solution, 10),
            fg_queue_length_quantile(solution, QUANTILE),
            solution.fg_queue_length,
        )
    print(f"{'N_FG':>5} {'P(N) High ACF':>14} {'P(N) Poisson':>13}")
    for n in range(8):
        print(f"{n:>5} {rows['high_acf'][0][n]:>14.4f} {rows['expo'][0][n]:>13.4f}")
    print(
        f"\nmean: {rows['high_acf'][2]:.2f} vs {rows['expo'][2]:.2f}; "
        f"q99: {rows['high_acf'][1]} vs {rows['expo'][1]} -- close means, "
        "very different tails."
    )

    print("\nBackground budget under the tail SLO:")
    labels = {
        "high_acf": "High ACF (E-mail)",
        "low_acf": "Low ACF",
        "ipp": "IPP (CV only)",
        "expo": "Poisson",
    }
    for key, arrival in comparators.items():
        p = max_bg_probability(arrival, service_rate)
        if p == 0.0:
            scaled = arrival.scaled_to_utilization(UTILIZATION, service_rate)
            baseline = FgBgModel(
                arrival=scaled, service_rate=service_rate, bg_probability=0.0
            ).solve()
            q99 = fg_queue_length_quantile(baseline, QUANTILE)
            print(
                f"  {labels[key]:<18} infeasible: even with no background "
                f"work, q99 = {q99} > {MAX_QLEN_99}"
            )
        else:
            print(f"  {labels[key]:<18} max p = {p:.2f}")

    print(
        "\nUnder correlated arrivals the tail SLO fails at 30% load before "
        "any background work is added -- burstiness, not the maintenance "
        "budget, is the binding constraint."
    )


if __name__ == "__main__":
    main()
