"""Capacity planning: how much background load fits under an SLO?

For a storage node running at a known foreground utilization, find the
largest background probability ``p`` that keeps (a) the foreground
response-time inflation under an SLO and (b) the background completion
rate above a floor.  The answer is computed for all four dependence
structures of the paper's Section 5.4 to show that the *same* mean load
admits very different background budgets.

Run:  python examples/capacity_planning.py
"""

import math

import numpy as np

from repro import FgBgModel, workloads
from repro.workloads import dependence_comparators

#: Foreground response time may grow by at most this factor over p = 0.
RESPONSE_INFLATION_SLO = 1.10

#: Required background completion rate.
COMPLETION_FLOOR = 0.80

UTILIZATION = 0.30


def max_bg_probability(arrival, service_rate: float) -> float:
    """Largest p (to 0.01) satisfying both constraints, or 0.0."""
    scaled = arrival.scaled_to_utilization(UTILIZATION, service_rate)
    baseline = FgBgModel(
        arrival=scaled, service_rate=service_rate, bg_probability=0.0
    ).solve()
    best = 0.0
    for p in np.arange(0.01, 1.001, 0.01):
        s = FgBgModel(
            arrival=scaled, service_rate=service_rate, bg_probability=float(p)
        ).solve()
        inflation = s.fg_response_time / baseline.fg_response_time
        rate = s.bg_completion_rate
        # bg_completion_rate is a deliberate NaN below
        # NEAR_ZERO_BG_PROBABILITY; a NaN comparison would silently
        # read as "SLO missed", so test finiteness explicitly.
        if inflation <= RESPONSE_INFLATION_SLO and math.isfinite(rate) and rate >= COMPLETION_FLOOR:
            best = float(p)
        else:
            break
    return best


def main() -> None:
    service_rate = workloads.SERVICE_RATE_PER_MS
    print(
        f"Foreground load {UTILIZATION:.0%}; SLO: response inflation <= "
        f"{RESPONSE_INFLATION_SLO:.2f}x, completion >= {COMPLETION_FLOOR:.0%}\n"
    )
    print(f"{'arrival process':<18} {'max background p':>17}")
    labels = {
        "high_acf": "High ACF (E-mail)",
        "low_acf": "Low ACF",
        "ipp": "IPP (CV only)",
        "expo": "Poisson",
    }
    for key, arrival in dependence_comparators("email").items():
        p = max_bg_probability(arrival, service_rate)
        print(f"{labels[key]:<18} {p:>17.2f}")

    print(
        "\nIdentical mean load, wildly different background budgets: the "
        "budget must be set from the measured dependence structure, not "
        "from utilization alone (the paper's conclusion)."
    )


if __name__ == "__main__":
    main()
