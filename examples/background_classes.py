"""Prioritized background classes (the paper's future-work extension).

A disk runs two kinds of background work: WRITE verification (urgent,
reliability-critical) and media scrubbing (can lag).  Both share the
5-slot background buffer; verification gets strict priority within the
background work.  This example compares per-class backlog and response
time across foreground loads and cross-checks one operating point against
the discrete-event simulator.

Run:  python examples/background_classes.py
"""

import numpy as np

from repro import workloads
from repro.core import MulticlassFgBgModel
from repro.sim import MulticlassSimulator

#: Per-completion spawn probabilities: (verification, scrubbing).
SPAWN = (0.3, 0.3)


def main() -> None:
    service_rate = workloads.SERVICE_RATE_PER_MS
    arrival = workloads.software_development()

    print("Two background classes on the Software Development workload")
    print(f"(p_verify = {SPAWN[0]}, p_scrub = {SPAWN[1]}, shared buffer of 5)\n")
    header = (
        f"{'load':>5} {'verify backlog':>15} {'scrub backlog':>14} "
        f"{'verify resp (ms)':>17} {'scrub resp (ms)':>16} {'admitted':>9}"
    )
    print(header)
    for util in (0.2, 0.35, 0.5, 0.65, 0.8):
        model = MulticlassFgBgModel(
            arrival=arrival.scaled_to_utilization(util, service_rate),
            service_rate=service_rate,
            bg_probabilities=SPAWN,
        )
        s = model.solve()
        print(
            f"{util:>5.0%} {s.bg_queue_lengths[0]:>15.3f} "
            f"{s.bg_queue_lengths[1]:>14.3f} {s.bg_response_times[0]:>17.1f} "
            f"{s.bg_response_times[1]:>16.1f} {s.bg_completion_rate:>9.1%}"
        )

    print(
        "\nPriority shields verification: its backlog and response time stay "
        "a fraction of scrubbing's, while admission (buffer sharing) is "
        "identical for both classes."
    )

    model = MulticlassFgBgModel(
        arrival=arrival.scaled_to_utilization(0.5, service_rate),
        service_rate=service_rate,
        bg_probabilities=SPAWN,
    )
    analytic = model.solve()
    simulated = MulticlassSimulator(model).run(
        1_000_000.0, np.random.default_rng(2006)
    )
    print("\nCross-check at 50% load (analytic / simulated):")
    print(
        f"  verify response {analytic.bg_response_times[0]:.1f} / "
        f"{simulated.bg_response_times[0]:.1f} ms, "
        f"scrub response {analytic.bg_response_times[1]:.1f} / "
        f"{simulated.bg_response_times[1]:.1f} ms"
    )


if __name__ == "__main__":
    main()
