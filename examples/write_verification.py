"""WRITE verification sizing: how much verification can a disk sustain?

The paper's motivating background task is READ-after-WRITE verification:
every verified WRITE spawns a background job with the same service demand.
Given a workload's WRITE fraction (the spawn probability ``p``), this
example finds the highest foreground utilization at which the disk still
verifies a target fraction of writes (background completion rate), and
shows how strongly the answer depends on the arrival dependence structure.

Run:  python examples/write_verification.py
"""

import math

from repro import FgBgModel, workloads

#: Fraction of requests that are WRITEs needing verification.
WRITE_FRACTION = 0.3

#: Required verification coverage (admitted/spawned background jobs).
COVERAGE_TARGET = 0.90


def max_sustainable_load(arrival, service_rate: float, coverage: float) -> float:
    """Largest utilization (to 1%) with bg_completion_rate >= coverage."""
    best = 0.0
    for util_pct in range(1, 100):
        util = util_pct / 100.0
        model = FgBgModel(
            arrival=arrival.scaled_to_utilization(util, service_rate),
            service_rate=service_rate,
            bg_probability=WRITE_FRACTION,
        )
        rate = model.solve().bg_completion_rate
        # NaN (p below NEAR_ZERO_BG_PROBABILITY) must not read as
        # "coverage missed": test finiteness before comparing.
        if math.isfinite(rate) and rate >= coverage:
            best = util
        else:
            break
    return best


def main() -> None:
    service_rate = workloads.SERVICE_RATE_PER_MS
    print(
        f"WRITE fraction p = {WRITE_FRACTION:.0%}, coverage target "
        f">= {COVERAGE_TARGET:.0%} of writes verified\n"
    )
    print(f"{'workload':<24} {'max sustainable load':>20}")
    cases = {
        "E-mail (high ACF)": workloads.email(),
        "User Accounts": workloads.user_accounts(),
        "Software Dev (low ACF)": workloads.software_development(),
    }
    for name, arrival in cases.items():
        load = max_sustainable_load(arrival, service_rate, COVERAGE_TARGET)
        print(f"{name:<24} {load:>20.0%}")

    print(
        "\nThe strongly correlated E-mail arrivals force a much lower load "
        "ceiling: burstiness, not just mean load, dictates how much "
        "verification the disk can absorb (the paper's Section 5.4 message)."
    )


if __name__ == "__main__":
    main()
