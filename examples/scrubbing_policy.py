"""Idle-wait policy tuning for background media scrubbing.

Disk scrubbing runs during idle periods; the idle-wait timer decides how
aggressively.  This example sweeps the idle wait from half to four mean
service times (the paper's Figures 9-10) and reports the trade-off between
foreground queue length and scrubbing completion, then recommends the
shortest idle wait whose foreground penalty stays under a budget.

Run:  python examples/scrubbing_policy.py
"""

from repro import FgBgModel, workloads

#: Scrubbing intensity: fraction of requests that trigger a scrub job.
SCRUB_PROBABILITY = 0.6

#: Acceptable relative foreground queue-length increase over the most
#: foreground-friendly setting in the sweep.
FG_PENALTY_BUDGET = 0.05

IDLE_WAIT_MULTIPLES = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)


def main() -> None:
    service_rate = workloads.SERVICE_RATE_PER_MS
    base = FgBgModel(
        arrival=workloads.email().scaled_to_utilization(0.2, service_rate),
        service_rate=service_rate,
        bg_probability=SCRUB_PROBABILITY,
    )

    rows = []
    for mult in IDLE_WAIT_MULTIPLES:
        s = base.with_idle_wait_multiple(mult).solve()
        rows.append((mult, s.fg_queue_length, s.bg_completion_rate))

    best_fg = min(r[1] for r in rows)
    print("E-mail workload at 20% load, scrub probability "
          f"{SCRUB_PROBABILITY:.0%}\n")
    print(f"{'idle wait (x service)':>22} {'FG qlen':>9} {'FG penalty':>11} "
          f"{'scrub completion':>17}")
    recommended = None
    for mult, qlen, comp in rows:
        penalty = qlen / best_fg - 1.0
        print(f"{mult:>22.1f} {qlen:>9.4f} {penalty:>11.2%} {comp:>17.2%}")
        if recommended is None and penalty <= FG_PENALTY_BUDGET:
            recommended = (mult, comp)

    mult, comp = recommended
    print(
        f"\nRecommendation: idle wait = {mult:.1f}x the mean service time "
        f"(foreground penalty <= {FG_PENALTY_BUDGET:.0%}, scrub completion "
        f"{comp:.0%}).\nStretching the idle wait further buys almost no "
        "foreground performance but keeps losing scrubbing throughput -- "
        "the paper's 'keep the idle wait near one service time' guidance."
    )


if __name__ == "__main__":
    main()
