"""Ablation: background buffer size X.

The paper fixes X = 5 and claims buffers up to 25 behave qualitatively the
same (Section 3.2).  This bench regenerates the completion-rate-vs-load
curve for X in {2, 5, 10, 25} to verify the claim: larger buffers shift
the curves slightly up without changing their shape or ordering.
"""

import numpy as np

from repro.core.model import FgBgModel
from repro.experiments.result import ExperimentResult, Series
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS

BUFFERS = (2, 5, 10, 25)
UTILIZATIONS = np.round(np.arange(0.1, 0.901, 0.1), 3)


def sweep_buffers() -> ExperimentResult:
    arrival = WORKLOADS["software_development"].fit()
    series = []
    for x in BUFFERS:
        values = np.empty_like(UTILIZATIONS)
        for i, util in enumerate(UTILIZATIONS):
            model = FgBgModel(
                arrival=arrival.scaled_to_utilization(util, SERVICE_RATE_PER_MS),
                service_rate=SERVICE_RATE_PER_MS,
                bg_probability=0.3,
                bg_buffer=x,
            )
            values[i] = model.solve().bg_completion_rate
        series.append(Series(label=f"X = {x}", x=UTILIZATIONS.copy(), y=values))
    return ExperimentResult(
        experiment_id="ablation-buffer",
        title="BG completion vs load for different buffer sizes (SoftDev, p=0.3)",
        x_label="foreground utilization",
        y_label="BG completion rate",
        series=tuple(series),
    )


def bench_ablation_buffer(regenerate):
    result = regenerate(sweep_buffers)
    # Qualitatively identical: every curve is monotone decreasing and
    # larger buffers dominate pointwise.
    for s in result.series:
        assert np.all(np.diff(s.y) < 1e-9)
    for smaller, larger in zip(result.series, result.series[1:]):
        assert np.all(larger.y >= smaller.y - 1e-9)
    # ... and a 5x bigger buffer buys less than a third of completion at
    # any load -- the shape, not the buffer, dominates (the paper's claim).
    gap = np.max(result.series_by_label("X = 25").y - result.series_by_label("X = 5").y)
    assert gap < 0.35
