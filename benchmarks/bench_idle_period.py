"""Idle-period anatomy across loads (beyond the paper's mean metrics).

Quantifies what the paper argues qualitatively: as load grows, idle
periods shorten and more of them expire before the idle wait ever grants
the server to background work.
"""

import numpy as np

from repro.core.idle_period import analyze_idle_periods
from repro.core.model import FgBgModel
from repro.experiments.result import ExperimentResult, Series
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS

UTILIZATIONS = np.round(np.arange(0.1, 0.851, 0.15), 3)


def sweep_idle_periods() -> ExperimentResult:
    arrival = WORKLOADS["software_development"].fit()
    lengths = np.empty_like(UTILIZATIONS)
    completions = np.empty_like(UTILIZATIONS)
    starved = np.empty_like(UTILIZATIONS)
    for i, util in enumerate(UTILIZATIONS):
        model = FgBgModel(
            arrival=arrival.scaled_to_utilization(util, SERVICE_RATE_PER_MS),
            service_rate=SERVICE_RATE_PER_MS,
            bg_probability=0.6,
        )
        analysis = analyze_idle_periods(model)
        lengths[i] = analysis.mean_length
        completions[i] = analysis.mean_bg_completions
        starved[i] = analysis.prob_no_bg_service
    return ExperimentResult(
        experiment_id="idle-period",
        title="Idle-period anatomy (SoftDev, p = 0.6)",
        x_label="foreground utilization",
        y_label="metric value",
        series=(
            Series(label="mean length (ms)", x=UTILIZATIONS.copy(), y=lengths),
            Series(label="BG completions per period", x=UTILIZATIONS.copy(), y=completions),
            Series(label="P(no BG service starts)", x=UTILIZATIONS.copy(), y=starved),
        ),
    )


def bench_idle_period_anatomy(regenerate):
    result = regenerate(sweep_idle_periods)
    lengths = result.series_by_label("mean length (ms)")
    starved = result.series_by_label("P(no BG service starts)")
    assert np.all(np.diff(lengths.y) < 0)  # idle periods shrink with load
    assert np.all(np.diff(starved.y) > 0)  # and starve BG more often
