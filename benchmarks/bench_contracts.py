"""Overhead of the runtime contract layer on the Figure-5 sweep.

Solves the E-mail load sweep (one utilization chain per background
probability, same grid as ``bench_engine.py``) with contracts on (the
default) and contracts off (``REPRO_CONTRACTS=off``) and records the
results in ``BENCH_contracts.json`` at the repository root.

The asserted statistic is a **per-model paired ratio**: every model of
the sweep is solved under both switch settings back to back (order
alternating), keeping the best of ``REPS`` repetitions per setting, and
the overhead is the ratio of the summed best times.  Run-to-run noise on
a shared machine is several percent of a full sweep -- larger than the
effect being measured -- but it decorrelates on a ~100 ms scale, so
whole-sweep pairs barely cancel it while per-solve (~3 ms) pairs do.
The whole-engine sweep is still timed once per setting for the report,
as the denominator the budget is stated against; the per-model statistic
is the harsher of the two (it excludes the engine's own bookkeeping from
the denominator), so asserting it is conservative.

The asserted budget is **2%**: the checks are a handful of O(m^2) passes
and at worst one LU solve per model solve, next to matrix-geometric
solves that factor the same matrices repeatedly.  If this assertion ever
fires, a check has grown a hidden solve -- fix the check, do not raise
the budget.
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.contracts.checks import ENV_SWITCH
from repro.core.model import FgBgModel
from repro.engine import SweepEngine
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS

UTILIZATIONS = tuple(round(0.05 * k, 2) for k in range(1, 12))  # 0.05..0.55
BG_PROBABILITIES = (0.1, 0.3, 0.6, 0.9)
REPS = 7
MAX_OVERHEAD = 0.02

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_contracts.json"


def email_chains() -> list[list[FgBgModel]]:
    base = FgBgModel(
        arrival=WORKLOADS["email"].fit(),
        service_rate=SERVICE_RATE_PER_MS,
        bg_probability=0.0,
    )
    return [
        [base.with_bg_probability(p).at_utilization(u) for u in UTILIZATIONS]
        for p in BG_PROBABILITIES
    ]


def sweep_once() -> float:
    solutions = SweepEngine().run_chains(email_chains())
    return solutions[0][-1].fg_queue_length


def timed_sweep(switch_value: str | None) -> tuple[float, float]:
    """(wall seconds, reference metric) of one engine sweep under the switch."""
    _set_switch(switch_value)
    start = time.perf_counter()
    metric = sweep_once()
    return time.perf_counter() - start, metric


def _set_switch(value: str | None) -> None:
    if value is None:
        os.environ.pop(ENV_SWITCH, None)
    else:
        os.environ[ENV_SWITCH] = value


def paired_overhead(models: list[FgBgModel], reps: int = REPS) -> tuple[float, float, float]:
    """(overhead fraction, on seconds, off seconds), per-model paired.

    ``replace(model)`` clears the per-instance QBD-build cache, so each
    timed unit is the full build + solve of the identical frozen
    parameters -- the same work the engine does per sweep point.
    """
    best = {"on": [float("inf")] * len(models), "off": [float("inf")] * len(models)}
    for rep in range(reps):
        for i, model in enumerate(models):
            order = (("on", None), ("off", "off"))
            if (rep + i) % 2:
                order = order[::-1]
            for label, value in order:
                _set_switch(value)
                start = time.perf_counter()
                # replace() inside the timer: __post_init__ contracts are
                # part of the overhead being measured.
                replace(model).solve()
                best[label][i] = min(best[label][i], time.perf_counter() - start)
    on_s, off_s = sum(best["on"]), sum(best["off"])
    return on_s / off_s - 1.0, on_s, off_s


def bench_contract_overhead(benchmark):
    models = [model for chain in email_chains() for model in chain]

    def measure():
        for model in models:  # warm every solve path outside the timed reps
            model.solve()
        overhead, on_s, off_s = paired_overhead(models)
        sweep = {}
        metrics = {}
        for label, value in (("on", None), ("off", "off")):
            sweep[label], metrics[label] = timed_sweep(value)
        return overhead, on_s, off_s, sweep, metrics

    old = os.environ.get(ENV_SWITCH)
    try:
        overhead, on_s, off_s, sweep, metrics = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
    finally:
        _set_switch(old)

    # Contracts must not change the numbers, only vet them.
    assert metrics["on"] == metrics["off"]

    assert overhead < MAX_OVERHEAD, (
        f"contract overhead {overhead:.2%} (per-model paired ratio, best of "
        f"{REPS} reps over {len(models)} models) exceeds the "
        f"{MAX_OVERHEAD:.0%} budget ({on_s:.3f}s on vs {off_s:.3f}s off)"
    )

    OUTPUT.write_text(
        json.dumps(
            {
                "sweep": {
                    "workload": "email",
                    "utilizations": list(UTILIZATIONS),
                    "bg_probabilities": list(BG_PROBABILITIES),
                    "points": len(UTILIZATIONS) * len(BG_PROBABILITIES),
                    "reps_per_model": REPS,
                },
                "paired_on_s": on_s,
                "paired_off_s": off_s,
                "overhead_fraction_paired": overhead,
                "engine_sweep_on_s": sweep["on"],
                "engine_sweep_off_s": sweep["off"],
                "budget_fraction": MAX_OVERHEAD,
                "qlen_fg_last": metrics["on"],
            },
            indent=2,
        )
        + "\n"
    )
