"""Figure 9: foreground queue length vs idle-wait duration."""

from repro.experiments import fig9_idle_wait_fg


def bench_fig9_idle_wait_fg(regenerate):
    result = regenerate(fig9_idle_wait_fg)
    for s in result.series:
        assert s.y[-1] <= s.y[0]  # longer idle wait helps foreground
