"""Related-work baseline: Cobham's non-preemptive priority formula.

Two findings, both beyond the paper's text:

1. **An exact identity.**  Under Poisson foreground arrivals, the FG/BG
   model's foreground mean response time equals Cobham's high-priority
   response with the low-priority rate set to the *accepted* background
   throughput -- for every buffer size, idle-wait length and scheduling
   mode.  The idle-wait design does not shield foreground *mean* delay;
   it shapes background admission.
2. **Where the formula fails.**  Under correlated (MMPP) arrivals the
   Poisson-based formula underestimates foreground delay by a growing
   factor -- another face of the paper's dependence message.
"""

import numpy as np

from repro.core.model import FgBgModel
from repro.experiments.result import ExperimentResult, Series
from repro.processes.poisson import PoissonProcess
from repro.vacation.priority import NonPreemptivePriorityQueue
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS

UTILIZATIONS = np.round(np.arange(0.1, 0.751, 0.1), 3)


def cobham_for(solution, util: float) -> float:
    baseline = NonPreemptivePriorityQueue(
        lam_high=util * SERVICE_RATE_PER_MS,
        lam_low=solution.bg_spawn_rate - solution.bg_drop_rate,
        mu=SERVICE_RATE_PER_MS,
    )
    return baseline.high_response_time


def sweep_baseline() -> ExperimentResult:
    poisson_model = np.empty_like(UTILIZATIONS)
    poisson_cobham = np.empty_like(UTILIZATIONS)
    mmpp_model = np.empty_like(UTILIZATIONS)
    mmpp_cobham = np.empty_like(UTILIZATIONS)
    email = WORKLOADS["email"].fit()
    for i, util in enumerate(UTILIZATIONS):
        s = FgBgModel(
            arrival=PoissonProcess(util * SERVICE_RATE_PER_MS),
            service_rate=SERVICE_RATE_PER_MS,
            bg_probability=0.9,
        ).solve()
        poisson_model[i] = s.fg_response_time
        poisson_cobham[i] = cobham_for(s, util)
        s = FgBgModel(
            arrival=email.scaled_to_utilization(util, SERVICE_RATE_PER_MS),
            service_rate=SERVICE_RATE_PER_MS,
            bg_probability=0.9,
        ).solve()
        mmpp_model[i] = s.fg_response_time
        mmpp_cobham[i] = cobham_for(s, util)
    return ExperimentResult(
        experiment_id="baseline-priority",
        title="FG response vs Cobham's priority formula (p = 0.9)",
        x_label="foreground utilization",
        y_label="FG mean response time (ms)",
        series=(
            Series(label="Poisson | FG/BG model", x=UTILIZATIONS.copy(), y=poisson_model),
            Series(label="Poisson | Cobham", x=UTILIZATIONS.copy(), y=poisson_cobham),
            Series(label="E-mail MMPP | FG/BG model", x=UTILIZATIONS.copy(), y=mmpp_model),
            Series(label="E-mail MMPP | Cobham", x=UTILIZATIONS.copy(), y=mmpp_cobham),
        ),
        notes=(
            "Poisson rows coincide exactly (accepted-rate identity); the "
            "MMPP rows expose the Poisson formula's growing underestimate"
        ),
    )


def bench_baseline_priority(regenerate):
    result = regenerate(sweep_baseline)
    model = result.series_by_label("Poisson | FG/BG model")
    cobham = result.series_by_label("Poisson | Cobham")
    np.testing.assert_allclose(model.y, cobham.y, rtol=1e-9)
    mmpp = result.series_by_label("E-mail MMPP | FG/BG model")
    mmpp_cobham = result.series_by_label("E-mail MMPP | Cobham")
    assert mmpp.y[-1] > 2 * mmpp_cobham.y[-1]
