"""Figure 10: background completion rate vs idle-wait duration."""

import numpy as np

from repro.experiments import fig10_idle_wait_bg


def bench_fig10_idle_wait_bg(regenerate):
    result = regenerate(fig10_idle_wait_bg)
    for s in result.series:
        assert np.all(np.diff(s.y) < 0)  # longer idle wait hurts background
