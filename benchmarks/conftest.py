"""Shared plumbing for the benchmark harness.

Every ``bench_figNN_*.py`` regenerates one table/figure of the paper: the
benchmark fixture times the computation and the resulting series are
printed so the run log contains the same rows/curves the paper reports.
Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.render import render_result
from repro.experiments.result import ExperimentResult


@pytest.fixture
def regenerate(benchmark, capsys):
    """Time a figure function once and print its rendered output.

    The sweeps are deterministic and relatively expensive, so one round is
    measured (pedantic mode) instead of pytest-benchmark's auto-calibrated
    many-rounds default.
    """

    def run(figure_func, *args, **kwargs) -> ExperimentResult:
        result = benchmark.pedantic(
            figure_func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(render_result(result))
        return result

    return run
