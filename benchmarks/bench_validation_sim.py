"""Analytic solution vs discrete-event simulation, timed side by side.

Prints the agreement table (the repository's stand-in for the paper's
model-validation experiments) while measuring the simulation cost.
"""

import numpy as np

from repro.core.model import FgBgModel
from repro.sim.fgbg import FgBgSimulator
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS

METRICS = (
    "fg_queue_length",
    "bg_queue_length",
    "fg_delayed_fraction",
    "bg_completion_rate",
    "fg_server_share",
    "bg_server_share",
)


def bench_validation_against_simulation(benchmark, capsys):
    arrival = WORKLOADS["software_development"].fit().scaled_to_utilization(
        0.4, SERVICE_RATE_PER_MS
    )
    model = FgBgModel(
        arrival=arrival, service_rate=SERVICE_RATE_PER_MS, bg_probability=0.6
    )
    analytic = model.solve()
    simulator = FgBgSimulator(model)
    simulated = benchmark.pedantic(
        simulator.run,
        args=(1_500_000.0, np.random.default_rng(2006)),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("== analytic vs simulation (SoftDev at 40% load, p = 0.6) ==")
        print(f"{'metric':<24} {'analytic':>12} {'simulated':>12}")
        for name in METRICS:
            print(
                f"{name:<24} {getattr(analytic, name):>12.5f} "
                f"{getattr(simulated, name):>12.5f}"
            )
    for name in METRICS:
        assert getattr(simulated, name) == pytest_approx(getattr(analytic, name))


def pytest_approx(value: float):
    import pytest

    return pytest.approx(value, rel=0.1, abs=0.01)
