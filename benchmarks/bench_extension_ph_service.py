"""Extension: phase-type service shapes (footnote 3 lifting).

Compares Erlang-4 (disk-like, CV^2 = 0.25), exponential and balanced-H2
(CV^2 = 4) service at equal mean, across foreground loads; times the
lifted (A*S-phase) solve.
"""

import numpy as np

from repro.core.ph_service import PhServiceFgBgModel
from repro.experiments.result import ExperimentResult, Series
from repro.processes.ph import PhaseType
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS

UTILIZATIONS = np.round(np.arange(0.1, 0.851, 0.15), 3)

SERVICES = {
    "Erlang-4 (scv 0.25)": PhaseType.erlang(4, 4 * SERVICE_RATE_PER_MS),
    "Exponential (scv 1)": PhaseType.exponential(SERVICE_RATE_PER_MS),
    "H2 (scv 4)": PhaseType.h2_balanced(1.0 / SERVICE_RATE_PER_MS, scv=4.0),
}


def sweep_services() -> ExperimentResult:
    arrival = WORKLOADS["software_development"].fit()
    series = []
    for name, service in SERVICES.items():
        qlen = np.empty_like(UTILIZATIONS)
        comp = np.empty_like(UTILIZATIONS)
        for i, util in enumerate(UTILIZATIONS):
            model = PhServiceFgBgModel(
                arrival=arrival.scaled_to_utilization(util, SERVICE_RATE_PER_MS),
                service=service,
                bg_probability=0.3,
            )
            s = model.solve()
            qlen[i] = s.fg_queue_length
            comp[i] = s.bg_completion_rate
        series.append(Series(label=f"fg qlen | {name}", x=UTILIZATIONS.copy(), y=qlen))
        series.append(Series(label=f"completion | {name}", x=UTILIZATIONS.copy(), y=comp))
    return ExperimentResult(
        experiment_id="extension-ph-service",
        title="Service-time shape under equal mean (SoftDev, p = 0.3)",
        x_label="foreground utilization",
        y_label="metric value",
        series=tuple(series),
    )


def bench_extension_ph_service(regenerate):
    result = regenerate(sweep_services)
    erlang = result.series_by_label("fg qlen | Erlang-4 (scv 0.25)")
    expo = result.series_by_label("fg qlen | Exponential (scv 1)")
    h2 = result.series_by_label("fg qlen | H2 (scv 4)")
    # Queue lengths order by service variability at every load.
    assert np.all(erlang.y < expo.y)
    assert np.all(expo.y < h2.y)
