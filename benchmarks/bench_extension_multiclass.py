"""Extension: multiclass background priorities across foreground loads.

Regenerates the per-class backlog/response curves of the future-work
extension and times the (larger) multiclass QBD solve.
"""

import numpy as np

from repro.core.multiclass import MulticlassFgBgModel
from repro.experiments.result import ExperimentResult, Series
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS

UTILIZATIONS = np.round(np.arange(0.1, 0.851, 0.15), 3)


def sweep_multiclass() -> ExperimentResult:
    arrival = WORKLOADS["software_development"].fit()
    resp = {0: [], 1: []}
    backlog = {0: [], 1: []}
    for util in UTILIZATIONS:
        model = MulticlassFgBgModel(
            arrival=arrival.scaled_to_utilization(util, SERVICE_RATE_PER_MS),
            service_rate=SERVICE_RATE_PER_MS,
            bg_probabilities=(0.3, 0.3),
        )
        s = model.solve()
        for c in (0, 1):
            resp[c].append(s.bg_response_times[c])
            backlog[c].append(s.bg_queue_lengths[c])
    series = []
    for c, name in ((0, "class 1 (priority)"), (1, "class 2")):
        series.append(
            Series(label=f"response | {name}", x=UTILIZATIONS.copy(), y=np.array(resp[c]))
        )
        series.append(
            Series(label=f"backlog | {name}", x=UTILIZATIONS.copy(), y=np.array(backlog[c]))
        )
    return ExperimentResult(
        experiment_id="extension-multiclass",
        title="Two prioritized background classes (SoftDev, p = 0.3 + 0.3)",
        x_label="foreground utilization",
        y_label="metric value",
        series=tuple(series),
    )


def bench_extension_multiclass(regenerate):
    result = regenerate(sweep_multiclass)
    hi = result.series_by_label("response | class 1 (priority)")
    lo = result.series_by_label("response | class 2")
    assert np.all(hi.y < lo.y)  # priority wins at every load
