"""Figure 1: empirical ACF of the three (synthetic) traces + summary table."""

from repro.experiments import fig1_trace_acf


def bench_fig1_trace_acf(regenerate):
    result = regenerate(fig1_trace_acf, samples=100_000)
    assert len(result.series) == 3
    # High-ACF E-mail trace clearly above the low-ACF Software Development.
    email = result.series_by_label("E-mail")
    softdev = result.series_by_label("Software Development")
    assert email.y[:10].mean() > softdev.y[:10].mean()
