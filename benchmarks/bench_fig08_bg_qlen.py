"""Figure 8: background queue length vs load."""

import numpy as np

from repro.experiments import fig8_bg_queue_length


def bench_fig8_bg_queue_length(regenerate):
    result = regenerate(fig8_bg_queue_length)
    for s in result.series:
        assert np.all(s.y <= 5.0)  # bounded by the buffer
        assert np.all(np.diff(s.y) > -1e-9)  # grows with load
