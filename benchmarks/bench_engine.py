"""Sweep-engine economics: warm-started vs cold R-matrix solves.

Runs the E-mail load sweep of the paper's Figure 5 (one utilization chain
per background probability) three ways and records the aggregate
:class:`~repro.engine.EngineStats` of each in ``BENCH_sweeps.json`` at the
repository root:

* ``cold-logred`` -- the default configuration: logarithmic reduction
  from scratch at every point (quadratic convergence, a handful of
  doublings each; the wall-time baseline);
* ``cold-functional`` -- functional iteration from scratch (linear
  convergence; thousands of iterations near saturation);
* ``warm`` -- each point seeded with the previous point's R, solved by
  Newton's method (a handful of iterations per point).

The headline claim -- warm starts need measurably fewer R iterations --
is asserted within the same iteration family (``warm`` vs
``cold-functional``, typically a ~50-100x reduction); ``cold-logred`` is
recorded alongside so the wall-time trade-off stays visible: its Kronecker
solve makes each Newton step expensive, which is why ``warm_start`` is
opt-in rather than the default.
"""

import json
from pathlib import Path

from repro.core.model import FgBgModel
from repro.engine import SweepEngine
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS

UTILIZATIONS = tuple(round(0.05 * k, 2) for k in range(1, 12))  # 0.05..0.55
BG_PROBABILITIES = (0.1, 0.3, 0.6, 0.9)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sweeps.json"


def email_chains() -> list[list[FgBgModel]]:
    base = FgBgModel(
        arrival=WORKLOADS["email"].fit(),
        service_rate=SERVICE_RATE_PER_MS,
        bg_probability=0.0,
    )
    return [
        [base.with_bg_probability(p).at_utilization(u) for u in UTILIZATIONS]
        for p in BG_PROBABILITIES
    ]


def run_config(name: str, engine: SweepEngine) -> dict:
    solutions = engine.run_chains(email_chains())
    summary = engine.stats.summary()
    summary["config"] = name
    summary["qlen_fg_last"] = solutions[0][-1].fg_queue_length
    return summary


def bench_engine_warm_vs_cold(benchmark):
    configs = {
        "cold-logred": SweepEngine(),
        "cold-functional": SweepEngine(algorithm="functional"),
        "warm": SweepEngine(algorithm="functional", warm_start=True),
    }

    def run_all():
        return {name: run_config(name, engine) for name, engine in configs.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Same answers everywhere (warm agrees to solver tolerance).
    reference = results["cold-logred"]["qlen_fg_last"]
    for summary in results.values():
        assert abs(summary["qlen_fg_last"] - reference) < 1e-7

    # The headline: warm starts need measurably fewer R iterations than
    # cold solves of the same iteration family.
    warm, cold = results["warm"], results["cold-functional"]
    assert warm["total_iterations"] < cold["total_iterations"] / 10
    assert warm["warm_started"] == warm["solves"] - len(BG_PROBABILITIES)

    points = len(UTILIZATIONS) * len(BG_PROBABILITIES)
    OUTPUT.write_text(
        json.dumps(
            {
                "sweep": {
                    "workload": "email",
                    "utilizations": list(UTILIZATIONS),
                    "bg_probabilities": list(BG_PROBABILITIES),
                    "points": points,
                },
                "runs": [results[name] for name in configs],
            },
            indent=2,
        )
        + "\n"
    )
