"""Figure 6: portion of foreground jobs delayed by background jobs."""

import numpy as np

from repro.experiments import fig6_fg_delayed


def bench_fig6_fg_delayed(regenerate):
    result = regenerate(fig6_fg_delayed)
    # Worst case stays small, and the curve rises then falls with load.
    worst = max(float(s.y.max()) for s in result.series)
    assert worst < 0.15
    s = result.series_by_label("E-mail High ACF | p = 0.9")
    peak = int(np.argmax(s.y))
    assert 0 < peak < len(s.y) - 1
