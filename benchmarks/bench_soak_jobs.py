"""Scale run of the job-queue chaos soak, with its report on record.

The unit suite (``tests/jobs/test_soak.py``) keeps its iteration count
small; this driver is the "hundreds of seeded iterations" form: it
storms both durable backends with worker kills, torn writes, full disks
and clock skew, asserts that *no* safety invariant was violated across
the whole run, and writes the per-backend tallies to ``BENCH_soak.json``
at the repository root so regressions in recovery behaviour (more
quarantines, fewer rejected zombie writes) are visible in review diffs.

``REPRO_SOAK_ITERATIONS`` overrides the per-backend iteration count
(the CI ``jobs-soak`` job uses that to guarantee >= 200 iterations
across the two backends).
"""

import json
from pathlib import Path

from repro._env import repro_env
from repro.jobs.soak import soak

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_soak.json"

DURABLE_BACKENDS = ("file", "sqlite")


def iterations(default: int = 100) -> int:
    raw = repro_env("REPRO_SOAK_ITERATIONS")
    return int(raw) if raw else default


def bench_soak_both_backends(benchmark, tmp_path):
    per_backend = iterations()

    def storm():
        return {
            backend: soak(
                tmp_path / backend,
                backend=backend,
                iterations=per_backend,
                seed=2006,
            )
            for backend in DURABLE_BACKENDS
        }

    reports = benchmark.pedantic(storm, rounds=1, iterations=1)

    for backend, report in reports.items():
        assert report.violations == (), (
            f"{backend}: " + "\n".join(report.violations)
        )
        assert report.kills_injected > 0
        assert report.torn_writes > 0
        assert report.zombie_writes_rejected == report.zombie_writes_attempted
        assert report.jobs_submitted == (
            report.completed
            + report.failed
            + report.cancelled
            + report.quarantined
        )

    OUTPUT.write_text(
        json.dumps(
            {
                "iterations_per_backend": per_backend,
                "reports": {
                    backend: {
                        "summary": report.summary(),
                        "jobs_submitted": report.jobs_submitted,
                        "completed": report.completed,
                        "failed": report.failed,
                        "cancelled": report.cancelled,
                        "quarantined": report.quarantined,
                        "kills_injected": report.kills_injected,
                        "torn_writes": report.torn_writes,
                        "disk_fulls": report.disk_fulls,
                        "sweeps": report.sweeps,
                        "requeues": report.requeues,
                        "zombie_writes_attempted": report.zombie_writes_attempted,
                        "zombie_writes_rejected": report.zombie_writes_rejected,
                        "releases": report.releases,
                    }
                    for backend, report in reports.items()
                },
            },
            indent=2,
        )
        + "\n"
    )
