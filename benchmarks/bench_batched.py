"""Batched kernel economics: stacked solves vs the sequential path.

Runs the 44-point E-mail load sweep of the paper's Figure 5 (11
utilizations x 4 background probabilities) twice -- once through the
sequential per-model path (``model.solve()``) and once through the
stacked kernel (:func:`repro.core.batched.solve_models_batched`) -- with
the QBD blocks pre-built on both paths, so the comparison isolates the
solve machinery (R iteration, boundary solve, level sums) the kernel
batches.  A micro-benchmark of the tiered ``sp(R) < 1`` certificate
against the full eigenvalue solve it replaces rides along.

Results land in ``BENCH_batched.json`` at the repository root.  The file
doubles as the CI regression guard: ``speedup_floor`` and
``warn_tolerance`` are *checked in* (preserved across regenerations, not
overwritten by measurements).  A run below ``speedup_floor`` but within
``speedup_floor / warn_tolerance`` only warns (noisy shared runners); a
run below the tolerance band fails the benchmark.
"""

import json
import time
import warnings
from pathlib import Path

import numpy as np

from repro.contracts import certify_spectral_radius_below_one
from repro.core.batched import solve_models_batched
from repro.core.model import FgBgModel
from repro.engine import SweepEngine
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS

UTILIZATIONS = tuple(round(0.05 * k, 2) for k in range(1, 12))  # 0.05..0.55
BG_PROBABILITIES = (0.1, 0.3, 0.6, 0.9)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batched.json"

#: Checked-in regression floor: the batched path must stay at least this
#: many times faster than cold sequential solving on the 44-point sweep.
DEFAULT_SPEEDUP_FLOOR = 3.0

#: Measurements in [floor / tolerance, floor) warn instead of failing --
#: shared CI runners are noisy; only a drop below the band is a regression.
DEFAULT_WARN_TOLERANCE = 1.3

#: Wall-time repeats; the best (least-interfered) round of each path is
#: compared, standard practice for wall-clock micro-comparisons.
ROUNDS = 3


def email_models() -> list[FgBgModel]:
    base = FgBgModel(
        arrival=WORKLOADS["email"].fit(),
        service_rate=SERVICE_RATE_PER_MS,
        bg_probability=0.0,
    )
    return [
        base.with_bg_probability(p).at_utilization(u)
        for p in BG_PROBABILITIES
        for u in UTILIZATIONS
    ]


def _checked_in_guard() -> tuple[float, float]:
    """The regression floor and tolerance currently committed, if any."""
    if OUTPUT.exists():
        try:
            payload = json.loads(OUTPUT.read_text())
            return (
                float(payload["guard"]["speedup_floor"]),
                float(payload["guard"]["warn_tolerance"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            pass
    return DEFAULT_SPEEDUP_FLOOR, DEFAULT_WARN_TOLERANCE


def _time_rounds(func) -> tuple[float, object]:
    best_ms, result = float("inf"), None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = func()
        best_ms = min(best_ms, (time.perf_counter() - start) * 1e3)
    return best_ms, result


def bench_batched_vs_sequential(benchmark):
    models = email_models()
    for model in models:
        model.qbd  # pre-build blocks: both paths need them, neither is timed on it

    def run_comparison():
        # Interleaved warm-up so first-touch costs hit neither timing.
        [m.solve() for m in models[:2]]
        solve_models_batched(models[:2])
        seq_ms, sequential = _time_rounds(lambda: [m.solve() for m in models])
        bat_ms, batched = _time_rounds(lambda: solve_models_batched(models))
        return seq_ms, bat_ms, sequential, batched

    seq_ms, bat_ms, sequential, batched = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    speedup = seq_ms / bat_ms

    # Identical answers (the headline correctness claim, also enforced at
    # 1e-10 by tests/qbd/test_batched.py and the property suite).
    worst = max(
        abs(s.fg_queue_length - b.fg_queue_length)
        for s, b in zip(sequential, batched)
    )
    assert worst < 1e-10

    # Engine-level run for the per-group records the JSON documents.
    engine = SweepEngine(batched=True)
    engine.run_chain(models)
    group_records = [g.as_dict() for g in engine.stats.batch_groups]

    # Satellite micro-bench: tiered sp(R) certificate vs full eigenvalues
    # over the 44 accepted R matrices.
    rs = [b.qbd_solution.r for b in batched]
    repeats = 20
    cert_ms, _ = _time_rounds(
        lambda: [
            certify_spectral_radius_below_one(r)
            for _ in range(repeats)
            for r in rs
        ]
    )
    eig_ms, _ = _time_rounds(
        lambda: [
            bool(np.max(np.abs(np.linalg.eigvals(r))) < 1.0)
            for _ in range(repeats)
            for r in rs
        ]
    )

    floor, tolerance = _checked_in_guard()
    OUTPUT.write_text(
        json.dumps(
            {
                "sweep": {
                    "workload": "email",
                    "utilizations": list(UTILIZATIONS),
                    "bg_probabilities": list(BG_PROBABILITIES),
                    "points": len(models),
                },
                "guard": {
                    "speedup_floor": floor,
                    "warn_tolerance": tolerance,
                },
                "measured": {
                    "sequential_wall_ms": round(seq_ms, 3),
                    "batched_wall_ms": round(bat_ms, 3),
                    "speedup": round(speedup, 3),
                    "max_metric_diff": worst,
                    "batch_groups": group_records,
                },
                "spectral_radius_certificate": {
                    "matrices": len(rs),
                    "repeats": repeats,
                    "tiered_ms": round(cert_ms / repeats, 4),
                    "eigvals_ms": round(eig_ms / repeats, 4),
                    "speedup": round(eig_ms / cert_ms, 2),
                },
            },
            indent=2,
        )
        + "\n"
    )

    # Regression guard: hard floor with a warn-only tolerance band.
    hard_floor = floor / tolerance
    if speedup < floor:
        message = (
            f"batched speedup {speedup:.2f}x is below the checked-in floor "
            f"{floor:.2f}x (hard floor {hard_floor:.2f}x)"
        )
        assert speedup >= hard_floor, message
        warnings.warn(message + " -- inside the warn-only tolerance band")

    # The certificate must beat the eigenvalue solve it replaces.
    assert cert_ms < eig_ms
