"""Figure 12: BG completion rate under the four dependence structures."""

import numpy as np

from repro.experiments import fig12_dependence_bg_completion


def bench_fig12_dependence_bg_completion(regenerate):
    result = regenerate(fig12_dependence_bg_completion)
    high = result.series_by_label("p = 0.3 | High ACF")
    expo = result.series_by_label("p = 0.3 | Expo")
    # Around mid load the completion gap approaches the paper's huge
    # exponential-vs-correlated difference.
    h = high.y[-1]
    e = expo.y[np.searchsorted(expo.x, high.x[-1])]
    assert e - h > 0.4
