"""Figure 7: background completion rate vs load."""

import numpy as np

from repro.experiments import fig7_bg_completion


def bench_fig7_bg_completion(regenerate):
    result = regenerate(fig7_bg_completion)
    for s in result.series:
        assert np.all(np.diff(s.y) < 1e-9)  # monotone collapse with load
    email = result.series_by_label("E-mail High ACF | p = 0.9")
    assert email.y[-1] < 0.35
