"""Performance of the three R-matrix algorithms on the paper's model.

Times each algorithm end-to-end (R + boundary + metrics) at a demanding
operating point (high load, strongly correlated arrivals -- sp(R) close
to 1, where linear iterations slow down and logarithmic reduction shines).
"""

import pytest

from repro.core.model import FgBgModel
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS


def make_model() -> FgBgModel:
    arrival = WORKLOADS["email"].fit().scaled_to_utilization(
        0.7, SERVICE_RATE_PER_MS
    )
    return FgBgModel(
        arrival=arrival, service_rate=SERVICE_RATE_PER_MS, bg_probability=0.6
    )


@pytest.mark.parametrize(
    "algorithm", ["logarithmic-reduction", "natural", "functional"]
)
def bench_solver_algorithm(benchmark, algorithm):
    model = make_model()
    solution = benchmark(model.solve, algorithm=algorithm)
    # All algorithms must land on the same answer.
    reference = model.solve(algorithm="logarithmic-reduction")
    assert solution.fg_queue_length == pytest.approx(
        reference.fg_queue_length, rel=1e-6
    )
