"""Figure 2: closed-form ACF of the fitted MMPP(2)s + parameter table."""

from repro.experiments import fig2_mmpp_acf


def bench_fig2_mmpp_acf(regenerate):
    result = regenerate(fig2_mmpp_acf)
    assert result.table[0] == ("workload", "v1", "v2", "l1", "l2")
    email = result.series_by_label("E-mail")
    assert 0.25 < email.y[0] < 0.35  # the paper's ~0.3 lag-1 level
