"""Figure 11: FG queue length under the four dependence structures."""

import numpy as np

from repro.experiments import fig11_dependence_fg_qlen


def bench_fig11_dependence_fg_qlen(regenerate):
    result = regenerate(fig11_dependence_fg_qlen)
    high = result.series_by_label("p = 0.3 | High ACF")
    expo = result.series_by_label("p = 0.3 | Expo")
    # Correlated arrivals reach at ~50% load queue lengths Poisson arrivals
    # only reach far later -- the paper's orders-of-magnitude gap.
    assert high.y[-1] > 10 * expo.y[np.searchsorted(expo.x, high.x[-1])]
