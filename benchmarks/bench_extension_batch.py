"""Extension: batch foreground arrivals (M/G/1-type chain).

At a fixed offered job load, larger batches make arrivals burstier; this
bench quantifies the cost on both headline metrics and times the
Ramaswami-based solve.
"""

import numpy as np

from repro.core.batch import BatchFgBgModel
from repro.experiments.result import ExperimentResult, Series
from repro.processes.poisson import PoissonProcess
from repro.workloads.paper import SERVICE_RATE_PER_MS

UTILIZATIONS = np.round(np.arange(0.1, 0.851, 0.15), 3)

BATCHES = {
    "batch 1": (1.0,),
    "batch 2": (0.0, 1.0),
    "geometric-ish 1-3": (0.5, 0.3, 0.2),
}


def sweep_batches() -> ExperimentResult:
    series = []
    for name, probs in BATCHES.items():
        mean_batch = sum(b * q for b, q in enumerate(probs, start=1))
        qlen = np.empty_like(UTILIZATIONS)
        comp = np.empty_like(UTILIZATIONS)
        for i, util in enumerate(UTILIZATIONS):
            event_rate = util * SERVICE_RATE_PER_MS / mean_batch
            model = BatchFgBgModel(
                arrival=PoissonProcess(event_rate),
                batch_probabilities=probs,
                service_rate=SERVICE_RATE_PER_MS,
                bg_probability=0.6,
            )
            s = model.solve()
            qlen[i] = s.fg_queue_length
            comp[i] = s.bg_completion_rate
        series.append(Series(label=f"fg qlen | {name}", x=UTILIZATIONS.copy(), y=qlen))
        series.append(Series(label=f"completion | {name}", x=UTILIZATIONS.copy(), y=comp))
    return ExperimentResult(
        experiment_id="extension-batch",
        title="Batch arrivals at equal offered job load (Poisson events, p = 0.6)",
        x_label="foreground utilization (jobs)",
        y_label="metric value",
        series=tuple(series),
    )


def bench_extension_batch(regenerate):
    result = regenerate(sweep_batches)
    q1 = result.series_by_label("fg qlen | batch 1")
    q2 = result.series_by_label("fg qlen | batch 2")
    c1 = result.series_by_label("completion | batch 1")
    c2 = result.series_by_label("completion | batch 2")
    # Burstier arrivals hurt both metrics at every load.
    assert np.all(q2.y > q1.y)
    assert np.all(c2.y <= c1.y + 1e-9)
