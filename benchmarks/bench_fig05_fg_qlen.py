"""Figure 5: foreground queue length vs load, per background probability."""

import numpy as np

from repro.experiments import fig5_fg_queue_length


def bench_fig5_fg_queue_length(regenerate):
    result = regenerate(fig5_fg_queue_length)
    # Sharp increase with load, near-insensitivity to p, and the high-ACF
    # workload saturating far earlier than the low-ACF one.
    email = result.series_by_label("E-mail High ACF | p = 0.3")
    assert np.all(np.diff(email.y) > 0)
    softdev = result.series_by_label("Software Dev. Low ACF | p = 0.3")
    assert email.y[-1] > softdev.y[np.searchsorted(softdev.x, email.x[-1])]
