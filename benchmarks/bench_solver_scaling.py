"""Solver cost as the background buffer (state space) grows.

The repeating level has ``(2X + 1) * A`` states and the boundary
``(X + 1)^2 * A``; this bench tracks the full solve time at X in
{5, 10, 25, 50} to document the polynomial growth.
"""

import math

import pytest

from repro.core.model import FgBgModel
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS


@pytest.mark.parametrize("bg_buffer", [5, 10, 25, 50])
def bench_solver_buffer_scaling(benchmark, bg_buffer):
    arrival = WORKLOADS["software_development"].fit().scaled_to_utilization(
        0.5, SERVICE_RATE_PER_MS
    )
    model = FgBgModel(
        arrival=arrival,
        service_rate=SERVICE_RATE_PER_MS,
        bg_probability=0.6,
        bg_buffer=bg_buffer,
    )
    solution = benchmark(model.solve)
    rate = solution.bg_completion_rate
    assert math.isfinite(rate), "bg_completion_rate is NaN at p=0.6"
    assert 0 <= rate <= 1
