"""Ablation: background scheduling within an idle period.

The paper is silent on whether queued background jobs drain back-to-back
once the idle wait has expired or each needs a fresh grant; the model
supports both.  This bench quantifies the difference on both headline
metrics.
"""

import numpy as np

from repro.core.blocks import BgServiceMode
from repro.core.model import FgBgModel
from repro.experiments.result import ExperimentResult, Series
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS

UTILIZATIONS = np.round(np.arange(0.1, 0.901, 0.1), 3)


def sweep_modes() -> ExperimentResult:
    arrival = WORKLOADS["software_development"].fit()
    series = []
    for mode in BgServiceMode:
        comp = np.empty_like(UTILIZATIONS)
        qlen = np.empty_like(UTILIZATIONS)
        for i, util in enumerate(UTILIZATIONS):
            model = FgBgModel(
                arrival=arrival.scaled_to_utilization(util, SERVICE_RATE_PER_MS),
                service_rate=SERVICE_RATE_PER_MS,
                bg_probability=0.6,
                bg_mode=mode,
            )
            s = model.solve()
            comp[i] = s.bg_completion_rate
            qlen[i] = s.fg_queue_length
        series.append(Series(label=f"completion | {mode.value}", x=UTILIZATIONS.copy(), y=comp))
        series.append(Series(label=f"fg qlen | {mode.value}", x=UTILIZATIONS.copy(), y=qlen))
    return ExperimentResult(
        experiment_id="ablation-bg-mode",
        title="Back-to-back vs re-wait background scheduling (SoftDev, p=0.6)",
        x_label="foreground utilization",
        y_label="metric value",
        series=tuple(series),
    )


def bench_ablation_bg_mode(regenerate):
    result = regenerate(sweep_modes)
    btb = result.series_by_label("completion | back_to_back")
    rew = result.series_by_label("completion | rewait")
    # Re-waiting before every background job can only lose completions.
    assert np.all(btb.y >= rew.y - 1e-9)
    # The foreground penalty of back-to-back service stays small.
    q_btb = result.series_by_label("fg qlen | back_to_back")
    q_rew = result.series_by_label("fg qlen | rewait")
    assert np.all(q_btb.y <= q_rew.y * 1.25 + 1e-9)
