"""Figure 13: fraction of FG delayed under the four dependence structures."""

import numpy as np

from repro.experiments import fig13_dependence_fg_delayed


def bench_fig13_dependence_fg_delayed(regenerate):
    result = regenerate(fig13_dependence_fg_delayed)
    # The impact is contained in a limited range, reached earlier under
    # correlated arrivals.
    for s in result.series:
        assert np.all(s.y < 0.2)
    high = result.series_by_label("p = 0.9 | High ACF")
    expo = result.series_by_label("p = 0.9 | Expo")
    assert high.x[int(np.argmax(high.y))] < expo.x[int(np.argmax(expo.y))]
